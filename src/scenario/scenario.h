// The scenario zoo: declarative robustness scenarios for the NURD stack.
//
// The paper evaluates on stationary replays of two traces. A deployed
// straggler predictor faces more hostile regimes: diurnal and bursty
// arrivals, heterogeneous machine pools where a relaunch can land somewhere
// WORSE than the machine it fled, machines failing mid-copy, the cluster
// preempting originals, and mid-stream feature-distribution drift that
// invalidates what a warm-started model learned early. Each axis already
// exists as a knob on the generator (trace/generator.h: shift_at /
// shift_rotation), the arrival factories, or the cluster engine
// (sched/cluster.h: machine_classes / machine_mtbf / preemption_rate);
// ScenarioSpec composes them declaratively and scenario_zoo() registers the
// named scenarios bench_scenarios sweeps.
//
// Scenarios are dataset-agnostic: time-like quantities are expressed in
// units of the job set's MEAN COMPLETION TIME (arrival load = jobs per mean
// JCT, MTBF / period / schedule breakpoints in mean-JCT multiples) and
// materialize into absolute ClusterConfig values against a concrete job set
// via make_cluster_config(spec, mean_jct). Pool sizes scale with the job
// count (spares_per_job).
//
// Determinism: everything here is a pure function of (spec, family, count,
// seed, reps). make_jobs inherits the generator's serial-prefix fork
// contract, evaluate_scenario inherits run_method's and
// simulate_cluster_replicated's — outcomes are bit-identical at any thread
// count, which is exactly what bench_scenarios --check and
// tests/test_scenario.cpp pin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/registry.h"
#include "sched/cluster.h"
#include "trace/generator.h"
#include "trace/job.h"

namespace nurd::scenario {

/// Which synthetic trace family a scenario replays (mirrors the two paper
/// datasets; see trace/generator.h).
enum class TraceFamily { kGoogle, kAlibaba };

const char* family_name(TraceFamily family);

/// Arrival-process shape, materialized by make_cluster_config.
enum class ArrivalKind {
  kBatch,      ///< all jobs at t = 0 (the paper's setting)
  kPoisson,    ///< constant rate `load` jobs per mean JCT
  kPiecewise,  ///< piecewise-constant schedule (see `schedule`)
  kDiurnal,    ///< sinusoidal day/night modulation around `load`
};

/// One segment of a normalized piecewise schedule: `load` jobs per mean JCT
/// from `begin` mean-JCTs onward.
struct LoadSegment {
  double begin = 0.0;
  double load = 1.0;
};

/// One named robustness scenario: generator drift knobs + arrival shape +
/// pool composition + injection rates, all in normalized units.
struct ScenarioSpec {
  std::string name;
  std::string summary;  ///< one line for tables and --help

  // --- trace drift (generator knobs, trace/generator.h) -------------------
  double shift_at = 1.0;        ///< horizon fraction where drift begins
  double shift_rotation = 0.0;  ///< fully-shifted loading blend share

  // --- arrivals (normalized to the job set's mean JCT) ---------------------
  ArrivalKind arrivals = ArrivalKind::kBatch;
  double load = 1.0;                  ///< kPoisson rate / kDiurnal base
  double diurnal_amplitude = 0.0;     ///< in [0, 1)
  double diurnal_period = 1.0;        ///< mean-JCT multiples
  std::vector<LoadSegment> schedule;  ///< kPiecewise only

  // --- spare-machine pool ---------------------------------------------------
  bool unlimited_pool = false;  ///< Algorithm-2 semantics (no queueing)
  double spares_per_job = 0.5;  ///< finite pool size = ceil(this * jobs)
  bool reclaim_releases = false;
  std::vector<sched::MachineClass> machine_classes;  ///< empty = homogeneous

  // --- injection ------------------------------------------------------------
  double mtbf_jct = 0.0;         ///< pool-machine MTBF in mean-JCT multiples
  double preemption_rate = 0.0;  ///< per-task original-preemption probability
};

/// The registered scenarios, in presentation order. Names are unique;
/// "baseline" is first and is the delta reference for the robustness table.
const std::vector<ScenarioSpec>& scenario_zoo();

/// Lookup by name. Throws std::invalid_argument on an unknown name, listing
/// the registered names (a typo'd --scenarios flag should say what exists).
const ScenarioSpec& scenario_by_name(const std::string& name);

/// Generates the scenario's job set: the family's paper-matched generator
/// defaults with the spec's drift knobs applied and the seed offset folded
/// in. Bit-identical at any thread count (0 = hardware concurrency).
std::vector<trace::Job> make_jobs(const ScenarioSpec& spec,
                                  TraceFamily family, std::size_t count,
                                  std::uint64_t seed_offset = 0,
                                  std::size_t threads = 0);

/// Mean completion time of a job set — the scenario time unit.
double mean_completion(std::span<const trace::Job> jobs);

/// Materializes the spec's cluster side against a concrete job set scale:
/// arrival rates, MTBF, and schedule breakpoints are denormalized by
/// `mean_jct`, the pool size by `job_count`.
sched::ClusterConfig make_cluster_config(const ScenarioSpec& spec,
                                         std::size_t job_count,
                                         double mean_jct);

/// One (scenario, family, method) cell of the robustness table. Counters are
/// summed over replications; means average them.
struct ScenarioOutcome {
  double macro_f1 = 0.0;            ///< evaluate_method's macro-averaged F1
  double mean_reduction_pct = 0.0;  ///< mean per-job JCT reduction
  double mean_makespan = 0.0;
  double mean_jct = 0.0;  ///< the time unit the spec was denormalized by
  std::size_t relaunched = 0;
  std::size_t machine_failures = 0;
  std::size_t preempted = 0;
  std::size_t stranded = 0;  ///< tasks that never completed (pool died)
};

/// Runs one cell end to end: generate the scenario's jobs, run the method
/// over the checkpoint stream, feed the flags to `reps` replicated cluster
/// simulations under the scenario's cluster config. Pure function of its
/// arguments; bit-identical at any thread count.
ScenarioOutcome evaluate_scenario(const ScenarioSpec& spec,
                                  TraceFamily family,
                                  const core::NamedPredictor& method,
                                  std::size_t job_count, std::size_t reps,
                                  std::uint64_t seed,
                                  std::size_t threads = 0);

}  // namespace nurd::scenario
