#include "scenario/trace_adapter.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace nurd::scenario {

namespace {

void validate_map(const ColumnMap& map) {
  auto fail = [&](const std::string& what) {
    throw std::invalid_argument("ColumnMap '" + map.name + "': " + what);
  };
  if (map.columns == 0) fail("columns must be > 0");
  if (map.feature_cols.empty()) fail("needs at least one feature column");
  if (map.time_power10 < -18 || map.time_power10 > 18) {
    fail("time_power10 must lie in [-18, 18]");
  }
  if (map.measure_event.empty() || map.finish_event.empty()) {
    fail("event tokens must be non-empty");
  }
  if (map.measure_event == map.finish_event) {
    fail("measure and finish event tokens must differ");
  }
  std::set<std::size_t> used{map.time_col, map.task_col, map.event_col};
  if (used.size() != 3) fail("time/task/event columns must be distinct");
  for (std::size_t c : map.feature_cols) {
    if (!used.insert(c).second) {
      fail("feature columns must not collide with each other or with the "
           "time/task/event columns");
    }
  }
  for (std::size_t c : used) {
    if (c >= map.columns) fail("column index out of range");
  }
  if (map.has_header && map.column_names.size() != map.columns) {
    fail("has_header requires one column_names entry per column");
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

// Splits on commas, keeping empty cells (including a trailing one).
void split_cells(std::string_view line, std::vector<std::string_view>* out) {
  out->clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out->push_back(line.substr(start));
      return;
    }
    out->push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

// Full-cell double parse (round-trip safe via strtod). Returns false when
// the cell is empty or not entirely a number; finiteness is the caller's
// check (so NaN rows are counted as non_finite, not unparsable). Hex floats
// are rejected — decimal exponent shifting (time_power10) has no meaning
// for them.
bool parse_double(std::string_view cell, double* out) {
  const std::string buf(trim(cell));
  if (buf.empty()) return false;
  if (buf.find('x') != std::string::npos ||
      buf.find('X') != std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool parse_task_id(std::string_view cell, std::uint64_t* out) {
  const std::string buf(trim(cell));
  if (buf.empty() || buf[0] == '-' || buf[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// Per-task accumulator during ingest: the finish event plus every accepted
// measurement, keyed by normalized time (a std::map so grid assembly and
// carry-forward walk in deterministic time order).
struct TaskAccum {
  double latency = -1.0;  ///< < 0 until a finish event lands
  std::vector<double> finish_row;
  std::map<double, std::vector<double>> measures;
};

IngestResult fail_ingest(std::string error, AdapterStats stats) {
  IngestResult out;
  out.error = std::move(error);
  out.stats = stats;
  return out;
}

}  // namespace

ColumnMap google_task_events_columns(std::size_t feature_count) {
  NURD_CHECK(feature_count > 0, "need at least one feature column");
  ColumnMap map;
  map.name = "google-task-events";
  // timestamp, missing-info, job id, task index, machine id, event type,
  // user, scheduling class, priority, then the metric columns.
  map.columns = 9 + feature_count;
  map.time_col = 0;
  map.task_col = 3;
  map.event_col = 5;
  map.feature_cols.resize(feature_count);
  for (std::size_t f = 0; f < feature_count; ++f) map.feature_cols[f] = 9 + f;
  map.measure_event = "8";  // UPDATE_RUNNING
  map.finish_event = "4";   // FINISH
  map.time_power10 = -6;    // microseconds -> seconds
  map.has_header = false;   // the real dumps ship headerless
  return map;
}

ColumnMap alibaba_instance_columns(std::size_t feature_count) {
  NURD_CHECK(feature_count > 0, "need at least one feature column");
  ColumnMap map;
  map.name = "alibaba-batch-instance";
  // instance id, job name, status, timestamp, then the metric columns.
  map.columns = 4 + feature_count;
  map.time_col = 3;
  map.task_col = 0;
  map.event_col = 2;
  map.feature_cols.resize(feature_count);
  for (std::size_t f = 0; f < feature_count; ++f) map.feature_cols[f] = 4 + f;
  map.measure_event = "Running";
  map.finish_event = "Terminated";
  map.time_power10 = 0;  // already seconds
  map.has_header = true;
  map.column_names = {"instance_id", "job_name", "status", "timestamp"};
  for (std::size_t f = 0; f < feature_count; ++f) {
    map.column_names.push_back("metric_" + std::to_string(f));
  }
  return map;
}

IngestResult ingest_foreign_csv(std::istream& in, const ColumnMap& map,
                                std::string job_id) {
  validate_map(map);
  AdapterStats stats;
  const std::size_t d = map.feature_cols.size();

  std::map<std::uint64_t, TaskAccum> tasks;
  std::vector<std::string_view> cells;
  std::string line;
  bool header_pending = map.has_header;
  while (std::getline(in, line)) {
    const std::string_view stripped = trim(line);
    if (stripped.empty()) continue;  // blank lines are not data rows
    if (header_pending) {
      header_pending = false;
      continue;
    }
    ++stats.rows_read;
    split_cells(stripped, &cells);
    if (cells.size() != map.columns) {
      ++stats.bad_cell_count;
      continue;
    }
    std::uint64_t task_id = 0;
    double t_raw = 0.0;
    if (!parse_task_id(cells[map.task_col], &task_id) ||
        !parse_double(cells[map.time_col], &t_raw)) {
      ++stats.unparsable_number;
      continue;
    }
    if (!std::isfinite(t_raw)) {
      ++stats.non_finite;
      continue;
    }
    double t = t_raw;
    if (map.time_power10 != 0 &&
        !parse_double(shift_decimal_exponent(
                          std::string(trim(cells[map.time_col])),
                          map.time_power10),
                      &t)) {
      ++stats.unparsable_number;
      continue;
    }
    if (!(t > 0.0) || !std::isfinite(t)) {
      ++stats.bad_time;
      continue;
    }
    const std::string_view event = trim(cells[map.event_col]);
    const bool is_finish = event == map.finish_event;
    if (!is_finish && event != map.measure_event) {
      ++stats.unknown_event;
      continue;
    }
    std::vector<double> row(d);
    bool parsed = true;
    bool finite = true;
    for (std::size_t f = 0; f < d; ++f) {
      if (!parse_double(cells[map.feature_cols[f]], &row[f])) {
        parsed = false;
        break;
      }
      finite = finite && std::isfinite(row[f]);
    }
    if (!parsed) {
      ++stats.unparsable_number;
      continue;
    }
    if (!finite) {
      ++stats.non_finite;
      continue;
    }
    TaskAccum& acc = tasks[task_id];
    if (is_finish) {
      if (acc.latency >= 0.0) {
        ++stats.duplicate_row;
        continue;
      }
      acc.latency = t;
      acc.finish_row = std::move(row);
    } else if (!acc.measures.emplace(t, std::move(row)).second) {
      ++stats.duplicate_row;
      continue;
    }
  }

  // --- Assembly: keep finished tasks, drop post-freeze measurements, and
  // form the checkpoint grid from the surviving measurement times.
  std::vector<std::uint64_t> kept_ids;
  std::set<double> grid;
  for (auto& [id, acc] : tasks) {
    if (acc.latency < 0.0) {
      ++stats.tasks_dropped;
      stats.orphan_rows += acc.measures.size();
      continue;
    }
    for (auto it = acc.measures.begin(); it != acc.measures.end();) {
      if (it->first >= acc.latency) {
        ++stats.post_freeze_rows;
        it = acc.measures.erase(it);
      } else {
        grid.insert(it->first);
        ++it;
      }
    }
    stats.rows_ingested += 1 + acc.measures.size();  // finish + measurements
    kept_ids.push_back(id);
  }
  NURD_CHECK(stats.rows_read == stats.rows_ingested + stats.dropped(),
             "adapter accounting identity violated");
  if (kept_ids.empty()) {
    return fail_ingest("no task has a finish event — cannot recover any "
                       "latency",
                       stats);
  }
  if (grid.empty()) {
    return fail_ingest("no usable measurement rows — cannot form a "
                       "checkpoint grid",
                       stats);
  }

  std::vector<double> latencies(kept_ids.size());
  for (std::size_t i = 0; i < kept_ids.size(); ++i) {
    latencies[i] = tasks[kept_ids[i]].latency;
  }

  IngestResult out;
  out.job.id = job_id.empty() ? map.name + "-import" : std::move(job_id);
  out.job.trace = trace::TraceStore(std::move(latencies), d);
  for (const double tau : grid) {
    out.job.trace.append_checkpoint(
        tau, [&](std::size_t i, std::span<double> row) {
          const TaskAccum& acc = tasks[kept_ids[i]];
          // Newly finished (latency in (prev, tau]): the frozen observation
          // is the finish row. Still running: the measurement at exactly
          // this grid time, or the nearest observation carried forward.
          const std::vector<double>* src = &acc.finish_row;
          if (acc.latency > tau) {
            const auto exact = acc.measures.find(tau);
            if (exact != acc.measures.end()) {
              src = &exact->second;
            } else {
              ++stats.carried_forward;
              auto after = acc.measures.upper_bound(tau);
              if (after != acc.measures.begin()) {
                src = &std::prev(after)->second;  // last observation before
              } else if (after != acc.measures.end()) {
                src = &after->second;  // backfill from the first one
              }  // no measurements at all: the finish row stands in
            }
          }
          std::copy(src->begin(), src->end(), row.begin());
        });
  }
  out.job.trace.finalize();
  out.original_task_ids = std::move(kept_ids);
  out.stats = stats;
  out.ok = true;
  return out;
}

IngestResult load_foreign_csv(const std::string& path, const ColumnMap& map,
                              std::string job_id) {
  std::ifstream in(path);
  if (!in) {
    return fail_ingest("cannot open '" + path + "' for reading", {});
  }
  return ingest_foreign_csv(in, map, std::move(job_id));
}

void write_foreign_csv(std::ostream& out, const trace::Job& job,
                       const ColumnMap& map) {
  validate_map(map);
  const std::size_t d = map.feature_cols.size();
  NURD_CHECK(job.feature_count() == d,
             "job feature count does not match the column map");
  NURD_CHECK(job.trace.finalized(), "export requires a finalized store");

  if (map.has_header) {
    for (std::size_t c = 0; c < map.columns; ++c) {
      out << (c ? "," : "") << map.column_names[c];
    }
    out << '\n';
  }

  std::vector<std::string> row(map.columns, "0");
  const auto emit = [&](double time, std::size_t task,
                        const std::string& event, std::span<const double> x) {
    row.assign(map.columns, "0");
    row[map.time_col] =
        shift_decimal_exponent(format_double(time), -map.time_power10);
    row[map.task_col] = std::to_string(task);
    row[map.event_col] = event;
    for (std::size_t f = 0; f < d; ++f) {
      row[map.feature_cols[f]] = format_double(x[f]);
    }
    for (std::size_t c = 0; c < map.columns; ++c) {
      out << (c ? "," : "") << row[c];
    }
    out << '\n';
  };

  const trace::TraceStore& store = job.trace;
  std::vector<std::size_t> running;
  for (std::size_t t = 0; t < store.checkpoint_count(); ++t) {
    store.partition(t, nullptr, &running);
    for (const std::size_t i : running) {
      emit(store.tau_run(t), i, map.measure_event, store.row(t, i));
    }
  }
  const std::size_t last = store.checkpoint_count() - 1;
  for (std::size_t i = 0; i < store.task_count(); ++i) {
    // A task frozen within the grid exports its frozen observation; one
    // still running at the last checkpoint exports its latest row (its true
    // frozen row was never stored — and a re-ingest never needs it, since
    // the task outlives every reconstructed checkpoint).
    const std::size_t frozen = store.freeze_checkpoint(i);
    const std::size_t at = frozen == trace::kNeverFrozen ? last : frozen;
    emit(store.latency(i), i, map.finish_event, store.row(at, i));
  }
}

void save_foreign_csv(const std::string& path, const trace::Job& job,
                      const ColumnMap& map) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  write_foreign_csv(out, job, map);
}

std::string shift_decimal_exponent(const std::string& value, int power10) {
  if (power10 == 0) return value;
  const std::size_t e = value.find_first_of("eE");
  if (e == std::string::npos) {
    return value + "e" + std::to_string(power10);
  }
  const long old_exp = std::strtol(value.c_str() + e + 1, nullptr, 10);
  return value.substr(0, e + 1) + std::to_string(old_exp + power10);
}

bool stores_bitwise_equal(const trace::TraceStore& a,
                          const trace::TraceStore& b) {
  if (a.task_count() != b.task_count() ||
      a.feature_count() != b.feature_count() ||
      a.checkpoint_count() != b.checkpoint_count() ||
      a.version_count() != b.version_count()) {
    return false;
  }
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (std::size_t t = 0; t < a.checkpoint_count(); ++t) {
    if (bits(a.tau_run(t)) != bits(b.tau_run(t))) return false;
  }
  for (std::size_t i = 0; i < a.task_count(); ++i) {
    if (bits(a.latency(i)) != bits(b.latency(i))) return false;
    if (a.freeze_checkpoint(i) != b.freeze_checkpoint(i)) return false;
    for (std::size_t t = 0; t < a.checkpoint_count(); ++t) {
      const auto ra = a.row(t, i);
      const auto rb = b.row(t, i);
      for (std::size_t f = 0; f < ra.size(); ++f) {
        if (bits(ra[f]) != bits(rb[f])) return false;
      }
    }
  }
  return true;
}

}  // namespace nurd::scenario
