// Foreign-trace ingestion: external cluster-trace CSV schemas -> TraceStore.
//
// Real cluster traces (Google ClusterData-2011, Alibaba cluster-trace-v2018)
// ship as TASK-EVENT TABLES: one CSV row per event, where a task's lifetime
// is a sequence of periodic measurement events (timestamp + its current
// metric values) closed by a terminal finish event (timestamp = completion
// time, frozen metrics). That is exactly TraceStore's information content,
// read sideways:
//
//   * the union of measurement timestamps is the checkpoint grid;
//   * a task's finish-event timestamp is its true latency, and the finish
//     row its frozen observation;
//   * a task's measurement row at a grid time is its observed row at that
//     checkpoint (missing cells carry the last observation forward, exactly
//     as a monitoring pipeline would, and are counted).
//
// The adapter is schema-pluggable through ColumnMap: which column holds the
// timestamp / task id / event type / metrics, what the event tokens are, and
// the time unit (Google timestamps are microseconds; the map's time_power10
// normalizes to the library's internal seconds). Unit conversion is done IN
// DECIMAL, not by multiplying doubles: a power-of-ten rescale adjusts the
// exponent of the CSV cell's decimal text (shift_decimal_exponent), which is
// exact in both directions — whereas binary multiplication by 1e-6 rounds,
// and some doubles have NO representable microsecond preimage at all (the
// two units' ulp grids interleave at ratio up to 2). Two ready-made maps
// mirror the real schemas:
// google_task_events_columns (headerless, microsecond timestamps, numeric
// event codes, junk columns the adapter ignores) and
// alibaba_instance_columns (headered, second timestamps, status strings).
//
// Malformed-row policy: ingest NEVER throws on data (only on programmer
// errors — an invalid ColumnMap). Every dropped row is counted by reason in
// AdapterStats, and the accounting identity
//     rows_read == rows_ingested + stats.dropped()
// holds on every return — the property the fuzz suite pins. Rows may arrive
// in ANY order (the tables are only approximately time-sorted in the wild).
//
// Round-trip contract: write_foreign_csv is the exact inverse — for any
// finalized store whose every checkpoint has at least one running task
// (true of every generator grid; a checkpoint all tasks have outlived is
// not reconstructible from task events alone), export + ingest reproduces
// the store BITWISE: latencies, checkpoint horizons, every row version, and
// the version count. Values are printed with round-trip precision (%.17g)
// and time cells are unit-converted by decimal exponent shifts, so the
// foreign representation loses nothing whatever the unit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/job.h"

namespace nurd::scenario {

/// How to read one foreign CSV schema. Field columns may appear in any
/// order; columns not named here are ignored on ingest and written as "0" on
/// export. Validated on use: throws std::invalid_argument on out-of-range or
/// colliding indices (a broken MAP is a programmer error; broken DATA never
/// throws).
struct ColumnMap {
  std::string name;          ///< schema name, for diagnostics and job ids
  std::size_t columns = 0;   ///< total columns per data row
  std::size_t time_col = 0;  ///< event timestamp (foreign units)
  std::size_t task_col = 0;  ///< numeric task id (need not be dense)
  std::size_t event_col = 0;  ///< event-type token
  std::vector<std::size_t> feature_cols;  ///< metric columns, schema order
  std::string measure_event;  ///< event_col token of a measurement row
  std::string finish_event;   ///< event_col token of a terminal finish row
  int time_power10 = 0;       ///< internal seconds = foreign * 10^this
                              ///< (microseconds -> -6); applied in decimal
  bool has_header = false;    ///< first line is a header (skipped on ingest,
                              ///< emitted from column_names on export)
  std::vector<std::string> column_names;  ///< size `columns` iff has_header
};

/// Google ClusterData-2011 task_events-style map: headerless, microsecond
/// timestamps (time_power10 = -6), numeric event codes (measure "8" =
/// UPDATE_RUNNING, finish "4" = FINISH), and the usual junk columns
/// (missing-info, job id, machine id, user, scheduling class, priority)
/// before `feature_count` metric columns.
ColumnMap google_task_events_columns(std::size_t feature_count);

/// Alibaba cluster-trace batch_instance-style map: headered, second
/// timestamps, status strings (measure "Running", finish "Terminated"),
/// metrics after the status/time columns.
ColumnMap alibaba_instance_columns(std::size_t feature_count);

/// Ingestion accounting. Drop reasons are disjoint — the FIRST failing check
/// claims a row — and sum to dropped().
struct AdapterStats {
  std::size_t rows_read = 0;      ///< data rows seen (header/blank excluded)
  std::size_t rows_ingested = 0;  ///< rows that informed the store
  // -- counted drops, by reason --------------------------------------------
  std::size_t bad_cell_count = 0;     ///< wrong number of columns
  std::size_t unparsable_number = 0;  ///< time/task/metric cell not a number
  std::size_t non_finite = 0;         ///< NaN or infinity in time or metrics
  std::size_t bad_time = 0;           ///< non-positive normalized timestamp
  std::size_t unknown_event = 0;      ///< event token the map does not ingest
  std::size_t duplicate_row = 0;      ///< repeated (task, time) measurement
                                      ///< or a second finish for a task
  std::size_t post_freeze_rows = 0;   ///< measurements at/after the task's
                                      ///< finish time
  std::size_t orphan_rows = 0;  ///< measurements of tasks with no finish row
  // -- non-row counters ------------------------------------------------------
  std::size_t tasks_dropped = 0;    ///< tasks discarded for lack of a finish
  std::size_t carried_forward = 0;  ///< grid cells filled from the task's
                                    ///< nearest observation (no measurement
                                    ///< at that exact grid time)

  /// Total dropped rows; rows_read == rows_ingested + dropped() always.
  std::size_t dropped() const {
    return bad_cell_count + unparsable_number + non_finite + bad_time +
           unknown_event + duplicate_row + post_freeze_rows + orphan_rows;
  }
};

/// Outcome of one ingestion. `ok` is false only when no usable store could
/// be built at all (unreadable stream, zero completed tasks, or an empty
/// checkpoint grid); partial data with counted drops still succeeds.
struct IngestResult {
  bool ok = false;
  std::string error;  ///< set iff !ok
  trace::Job job;     ///< finalized store; task ids compacted to 0..n-1 in
                      ///< ascending original-id order
  std::vector<std::uint64_t> original_task_ids;  ///< per compacted id
  AdapterStats stats;
};

/// Ingests one job's task-event rows from `in` under `map`. Never throws on
/// data; see AdapterStats. `job_id` defaults to "<map.name>-import".
IngestResult ingest_foreign_csv(std::istream& in, const ColumnMap& map,
                                std::string job_id = "");

/// File-path convenience wrapper (unreadable path -> ok = false).
IngestResult load_foreign_csv(const std::string& path, const ColumnMap& map,
                              std::string job_id = "");

/// Exports `job` as foreign task-event rows under `map`: for every
/// checkpoint, one measurement row per still-running task (ascending id),
/// then one finish row per task. The exact inverse of ingest_foreign_csv —
/// see the round-trip contract in the file comment.
void write_foreign_csv(std::ostream& out, const trace::Job& job,
                       const ColumnMap& map);

/// File-path convenience wrapper. Throws std::runtime_error if the path
/// cannot be opened for writing.
void save_foreign_csv(const std::string& path, const trace::Job& job,
                      const ColumnMap& map);

/// Shifts the decimal exponent of a number's text representation by
/// `power10` — the exact power-of-ten rescale behind time_power10:
/// "845.261" shifted +6 is "845.261e6", "8.4e+02" shifted +6 is "8.4e8".
/// Assumes `value` is a valid decimal number (parse it first); exposed for
/// the round-trip tests.
std::string shift_decimal_exponent(const std::string& value, int power10);

/// Bitwise store equality: dimensions, checkpoint horizons, latencies,
/// freeze checkpoints, every observed row, and the stored version count.
/// The round-trip test oracle.
bool stores_bitwise_equal(const trace::TraceStore& a,
                          const trace::TraceStore& b);

}  // namespace nurd::scenario
