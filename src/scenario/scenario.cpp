#include "scenario/scenario.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "eval/harness.h"

namespace nurd::scenario {

namespace {

// The heterogeneous pool of the "hetero" and "chaos" scenarios: a relaunch
// has a 1-in-4 chance of landing on a slow machine that is ALSO the most
// straggler-prone — heterogeneity as a risk axis, not a constant rescaling.
std::vector<sched::MachineClass> mixed_fleet() {
  return {
      {.name = "fast", .weight = 0.25, .speed = 1.5,
       .straggler_propensity = 0.02, .straggler_factor = 2.0},
      {.name = "standard", .weight = 0.5, .speed = 1.0,
       .straggler_propensity = 0.08, .straggler_factor = 3.0},
      {.name = "slow", .weight = 0.25, .speed = 0.6,
       .straggler_propensity = 0.25, .straggler_factor = 4.0},
  };
}

std::vector<ScenarioSpec> build_zoo() {
  std::vector<ScenarioSpec> zoo;

  {
    ScenarioSpec s;
    s.name = "baseline";
    s.summary = "stationary batch arrivals, homogeneous finite pool";
    zoo.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "diurnal";
    s.summary = "day/night sinusoidal arrival load (amplitude 0.6)";
    s.arrivals = ArrivalKind::kDiurnal;
    s.load = 2.0;
    s.diurnal_amplitude = 0.6;
    s.diurnal_period = 0.5;
    zoo.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "spike";
    s.summary = "piecewise load with an 8x burst window";
    s.arrivals = ArrivalKind::kPiecewise;
    s.schedule = {{0.0, 1.0}, {0.25, 8.0}, {0.5, 1.0}};
    zoo.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "hetero";
    s.summary = "mixed fast/standard/slow fleet; slow class straggles";
    s.machine_classes = mixed_fleet();
    zoo.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "failures";
    s.summary = "pool machines die (MTBF = 2 mean JCTs); work requeues";
    s.mtbf_jct = 2.0;
    zoo.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "preempt";
    s.summary = "cluster preempts 15% of originals mid-run";
    s.preemption_rate = 0.15;
    zoo.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "drift";
    s.summary = "feature loadings rotate mid-stream (shift at 45% horizon)";
    s.shift_at = 0.45;
    s.shift_rotation = 0.6;
    zoo.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "chaos";
    s.summary = "everything at once, milder knobs";
    s.shift_at = 0.55;
    s.shift_rotation = 0.4;
    s.arrivals = ArrivalKind::kDiurnal;
    s.load = 2.0;
    s.diurnal_amplitude = 0.4;
    s.diurnal_period = 0.5;
    s.machine_classes = mixed_fleet();
    s.mtbf_jct = 3.0;
    s.preemption_rate = 0.08;
    zoo.push_back(std::move(s));
  }
  return zoo;
}

}  // namespace

const char* family_name(TraceFamily family) {
  return family == TraceFamily::kGoogle ? "Google" : "Alibaba";
}

const std::vector<ScenarioSpec>& scenario_zoo() {
  static const std::vector<ScenarioSpec> zoo = build_zoo();
  return zoo;
}

const ScenarioSpec& scenario_by_name(const std::string& name) {
  std::string known;
  for (const ScenarioSpec& spec : scenario_zoo()) {
    if (spec.name == name) return spec;
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  throw std::invalid_argument("unknown scenario '" + name +
                              "'; registered scenarios: " + known);
}

std::vector<trace::Job> make_jobs(const ScenarioSpec& spec,
                                  TraceFamily family, std::size_t count,
                                  std::uint64_t seed_offset,
                                  std::size_t threads) {
  trace::GeneratorConfig config =
      family == TraceFamily::kGoogle
          ? trace::GoogleLikeGenerator::google_defaults()
          : trace::AlibabaLikeGenerator::alibaba_defaults();
  config.seed += seed_offset;
  config.shift_at = spec.shift_at;
  config.shift_rotation = spec.shift_rotation;
  if (family == TraceFamily::kGoogle) {
    trace::GoogleLikeGenerator gen(config);
    return gen.generate(count, threads);
  }
  trace::AlibabaLikeGenerator gen(config);
  return gen.generate(count, threads);
}

double mean_completion(std::span<const trace::Job> jobs) {
  NURD_CHECK(!jobs.empty(), "mean_completion needs at least one job");
  double sum = 0.0;
  for (const trace::Job& job : jobs) sum += job.completion_time();
  return sum / static_cast<double>(jobs.size());
}

sched::ClusterConfig make_cluster_config(const ScenarioSpec& spec,
                                         std::size_t job_count,
                                         double mean_jct) {
  NURD_CHECK(mean_jct > 0.0, "mean JCT must be positive");
  NURD_CHECK(job_count > 0, "need at least one job");
  sched::ClusterConfig config;
  if (spec.unlimited_pool) {
    config.machines = sched::kUnlimitedMachines;
  } else {
    const double spares =
        std::ceil(spec.spares_per_job * static_cast<double>(job_count));
    config.machines = spares < 1.0 ? 1 : static_cast<std::size_t>(spares);
  }
  config.reclaim_releases = spec.reclaim_releases;
  switch (spec.arrivals) {
    case ArrivalKind::kBatch:
      break;  // null arrivals = batch
    case ArrivalKind::kPoisson:
      config.arrivals = sched::poisson_arrivals(spec.load / mean_jct);
      break;
    case ArrivalKind::kPiecewise: {
      std::vector<sched::RateSegment> absolute;
      absolute.reserve(spec.schedule.size());
      for (const LoadSegment& seg : spec.schedule) {
        absolute.push_back({seg.begin * mean_jct, seg.load / mean_jct});
      }
      config.arrivals = sched::piecewise_poisson_arrivals(std::move(absolute));
      break;
    }
    case ArrivalKind::kDiurnal:
      config.arrivals = sched::diurnal_poisson_arrivals(
          spec.load / mean_jct, spec.diurnal_amplitude,
          spec.diurnal_period * mean_jct);
      break;
  }
  config.machine_classes = spec.machine_classes;
  config.machine_mtbf = spec.mtbf_jct * mean_jct;
  config.preemption_rate = spec.preemption_rate;
  return config;
}

ScenarioOutcome evaluate_scenario(const ScenarioSpec& spec,
                                  TraceFamily family,
                                  const core::NamedPredictor& method,
                                  std::size_t job_count, std::size_t reps,
                                  std::uint64_t seed,
                                  std::size_t threads) {
  NURD_CHECK(reps > 0, "need at least one replication");
  const auto jobs = make_jobs(spec, family, job_count, /*seed_offset=*/0,
                              threads);
  const auto runs = eval::run_method(method, jobs, 90.0, threads);

  ScenarioOutcome out;
  out.macro_f1 = eval::aggregate_method(method.name, runs).f1;
  out.mean_jct = mean_completion(jobs);
  const auto config = make_cluster_config(spec, jobs.size(), out.mean_jct);
  const auto results = sched::simulate_cluster_replicated(
      jobs, runs, config, reps, seed, threads);
  const auto summary = sched::summarize_replications(results);
  out.mean_reduction_pct = summary.mean_reduction_pct;
  out.mean_makespan = summary.mean_makespan;
  for (const sched::ClusterResult& r : results) {
    out.relaunched += r.relaunched;
    out.machine_failures += r.machine_failures;
    out.preempted += r.preempted;
    out.stranded += r.stranded;
  }
  return out;
}

}  // namespace nurd::scenario
