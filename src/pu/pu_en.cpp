#include "pu/pu_en.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace nurd::pu {

PuElkanNoto::PuElkanNoto(PuEnParams params)
    : params_(params), clf_(ml::GradientBoosting::classifier(params.gbt)) {}

void PuElkanNoto::fit(const Matrix& labeled, const Matrix& unlabeled) {
  NURD_CHECK(labeled.rows() > 0, "PU-EN needs labeled examples");
  NURD_CHECK(unlabeled.rows() > 0, "PU-EN needs unlabeled examples");
  NURD_CHECK(labeled.cols() == unlabeled.cols(), "feature width mismatch");

  // Hold out part of the labeled set for the c estimate; train the
  // nontraditional classifier labeled(1) vs unlabeled(0) on the rest.
  Rng rng(params_.seed);
  const std::size_t n_lab = labeled.rows();
  const auto n_hold = std::min<std::size_t>(
      std::max<std::size_t>(
          1, static_cast<std::size_t>(params_.holdout_fraction *
                                      static_cast<double>(n_lab))),
      n_lab > 1 ? n_lab - 1 : 1);
  const auto perm = rng.permutation(n_lab);
  std::vector<std::size_t> hold(perm.begin(),
                                perm.begin() + static_cast<std::ptrdiff_t>(n_hold));
  std::vector<std::size_t> train_lab(perm.begin() + static_cast<std::ptrdiff_t>(n_hold),
                                     perm.end());
  if (train_lab.empty()) train_lab = hold;  // tiny labeled sets: reuse

  Matrix x(0, 0);
  std::vector<double> y;
  x.reserve_rows(train_lab.size() + unlabeled.rows());
  y.reserve(train_lab.size() + unlabeled.rows());
  for (auto i : train_lab) {
    x.push_row(labeled.row(i));
    y.push_back(1.0);
  }
  for (std::size_t i = 0; i < unlabeled.rows(); ++i) {
    x.push_row(unlabeled.row(i));
    y.push_back(0.0);
  }
  clf_.fit(x, y);

  // c = average classifier output on held-out labeled examples (estimator e1
  // from Elkan & Noto §3).
  double sum = 0.0;
  for (auto i : hold) sum += clf_.predict(labeled.row(i));
  c_ = std::clamp(sum / static_cast<double>(hold.size()), 1e-3, 1.0);
  fitted_ = true;
}

double PuElkanNoto::prob_labeled_class(std::span<const double> row) const {
  NURD_CHECK(fitted_, "model not fitted");
  return std::clamp(clf_.predict(row) / c_, 0.0, 1.0);
}

}  // namespace nurd::pu
