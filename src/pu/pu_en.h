// PU learning, Elkan & Noto (2008), adapted to the negative-unlabeled
// straggler setting (paper §3.3). The classical method assumes the labeled
// set is a random sample of the positive class; here the labeled set is the
// *negative* class (finished tasks), so roles are swapped: the
// "nontraditional" classifier estimates P(labeled|x) = P(finished-by-now|x),
// the calibration constant c = E[g(x) | labeled] corrects for incomplete
// labeling, and a task is predicted to straggle when the calibrated
// probability of belonging to the labeled (finished) class falls below 1/2.
//
// The paper notes this method's core assumption — labels independent of
// features given the class — is violated for stragglers (only *fast*
// non-stragglers are labeled early), which is exactly why it underperforms
// NURD; we reproduce the method faithfully, violation included.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.h"
#include "ml/gbt.h"

namespace nurd::pu {

/// Elkan–Noto hyperparameters.
struct PuEnParams {
  ml::GbtParams gbt;          ///< nontraditional classifier settings
  double holdout_fraction = 0.2;  ///< labeled fraction reserved to estimate c
  std::uint64_t seed = 29;
};

/// Elkan–Noto PU classifier over a boosted logistic base learner.
class PuElkanNoto {
 public:
  explicit PuElkanNoto(PuEnParams params = {});

  /// Hyperparameters this model was constructed with.
  const PuEnParams& params() const { return params_; }

  /// Fits on labeled rows (the known class) and unlabeled rows (mixture).
  void fit(const Matrix& labeled, const Matrix& unlabeled);

  /// Calibrated probability that `row` belongs to the labeled class,
  /// g(x)/c clipped to [0,1].
  double prob_labeled_class(std::span<const double> row) const;

  /// Estimated label frequency c = E[g(x)|labeled].
  double c_estimate() const { return c_; }

  bool fitted() const { return fitted_; }

 private:
  PuEnParams params_;
  ml::GradientBoosting clf_;
  double c_ = 1.0;
  bool fitted_ = false;
};

}  // namespace nurd::pu
