// PU learning by bagging (Mordelet & Vert 2014), adapted to the
// negative-unlabeled straggler setting. Each bagging round treats a
// bootstrap of the unlabeled (running) tasks as if it were the opposite
// class of the labeled (finished) tasks, trains a linear SVM, and records
// out-of-bag decision values; the aggregate score estimates how strongly a
// point separates from the labeled class — i.e., its straggler propensity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "ml/linear_svm.h"

namespace nurd::pu {

/// Bagging-PU hyperparameters.
struct PuBgParams {
  int n_rounds = 15;         ///< bagging rounds
  std::size_t sample_size = 0;  ///< per-round unlabeled bootstrap; 0 = |labeled|
  ml::SvmParams svm;
  std::uint64_t seed = 31;
};

/// Bagging SVM for PU data.
class PuBaggingSvm {
 public:
  explicit PuBaggingSvm(PuBgParams params = {});

  /// Fits on the labeled class and unlabeled mixture; afterwards
  /// `unlabeled_scores()` holds the aggregated anti-labeled score per
  /// unlabeled row (higher ⇒ less like the labeled class ⇒ straggler).
  void fit(const Matrix& labeled, const Matrix& unlabeled);

  /// Aggregated scores aligned with the rows of `unlabeled` passed to fit().
  const std::vector<double>& unlabeled_scores() const { return scores_; }

  bool fitted() const { return fitted_; }

 private:
  PuBgParams params_;
  std::vector<double> scores_;
  bool fitted_ = false;
};

}  // namespace nurd::pu
