#include "pu/pu_bg.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace nurd::pu {

PuBaggingSvm::PuBaggingSvm(PuBgParams params) : params_(params) {
  NURD_CHECK(params_.n_rounds > 0, "need at least one bagging round");
}

void PuBaggingSvm::fit(const Matrix& labeled, const Matrix& unlabeled) {
  NURD_CHECK(labeled.rows() > 0, "PU-BG needs labeled examples");
  NURD_CHECK(unlabeled.rows() > 0, "PU-BG needs unlabeled examples");
  NURD_CHECK(labeled.cols() == unlabeled.cols(), "feature width mismatch");

  const std::size_t n_u = unlabeled.rows();
  const std::size_t sample =
      params_.sample_size > 0
          ? std::min(params_.sample_size, n_u)
          : std::min(labeled.rows(), n_u);

  Rng rng(params_.seed);
  std::vector<double> score_sum(n_u, 0.0);
  std::vector<int> score_cnt(n_u, 0);

  for (int round = 0; round < params_.n_rounds; ++round) {
    const auto boot = rng.sample_with_replacement(n_u, sample);
    std::vector<bool> in_bag(n_u, false);
    for (auto i : boot) in_bag[i] = true;

    // Train labeled(0) vs bootstrap-unlabeled(1).
    Matrix x(0, 0);
    std::vector<double> y;
    x.reserve_rows(labeled.rows() + boot.size());
    y.reserve(labeled.rows() + boot.size());
    for (std::size_t i = 0; i < labeled.rows(); ++i) {
      x.push_row(labeled.row(i));
      y.push_back(0.0);
    }
    for (auto i : boot) {
      x.push_row(unlabeled.row(i));
      y.push_back(1.0);
    }
    auto svm_params = params_.svm;
    svm_params.seed = params_.svm.seed + static_cast<std::uint64_t>(round);
    ml::LinearSVM svm(svm_params);
    svm.fit(x, y);

    // Out-of-bag scoring: only rows not used as pseudo-negatives this round.
    for (std::size_t i = 0; i < n_u; ++i) {
      if (in_bag[i]) continue;
      score_sum[i] += svm.decision(unlabeled.row(i));
      ++score_cnt[i];
    }
  }

  scores_.assign(n_u, 0.0);
  for (std::size_t i = 0; i < n_u; ++i) {
    // Rows that were in-bag every round (rare) fall back to score 0.
    scores_[i] = score_cnt[i] > 0
                     ? score_sum[i] / static_cast<double>(score_cnt[i])
                     : 0.0;
  }
  fitted_ = true;
}

}  // namespace nurd::pu
