// NEON kernel backend — compile-time stub for aarch64 builds.
//
// The table currently forwards every primitive to the reference
// implementations (renamed "neon"), so the dispatch plumbing — env
// override, set_backend, bench backend columns, the CI matrix — is
// exercised on ARM today, and tuned NEON intrinsics can land primitive by
// primitive without touching any call site. Because it aliases the
// reference code it inherits the bit-exact contract for free; once real
// NEON reductions land they move to the tolerance-bound contract and
// tests/test_kernel.cpp covers them exactly as it does AVX2.
#include "kernel/kernel.h"

namespace nurd::kernel::detail {

#if defined(__aarch64__) || defined(_M_ARM64)

const KernelOps* neon_ops() {
  static const KernelOps table = [] {
    KernelOps t = reference_ops();
    t.name = "neon";
    return t;
  }();
  return &table;
}

#else  // x86 and friends: no NEON table in this build.

const KernelOps* neon_ops() { return nullptr; }

#endif

}  // namespace nurd::kernel::detail
