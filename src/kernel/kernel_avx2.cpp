// AVX2 kernel backend. Every function carries a per-function
// __attribute__((target("avx2"))) so this translation unit compiles under
// the library's ordinary flags; the dispatch layer only installs this table
// after runtime CPUID detection (kernel.cpp backend_available), so no AVX2
// instruction executes on a CPU without it.
//
// Determinism contract (see kernel.h): elementwise primitives are
// bit-identical to the reference backend — vector lanes perform exactly the
// scalar operations, one per element, no reassociation. Reductions use four
// partial sums folded pairwise at the end, and sigmoid uses a polynomial
// vector exp, so those are tolerance-bound (tests/test_kernel.cpp).
//
// No FMA anywhere: the reference path is plain mul+add and contracting the
// AVX2 path would widen the gap between backends for zero dispatch benefit.
#include "kernel/kernel.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>

#define NURD_AVX2 __attribute__((target("avx2")))

namespace nurd::kernel {
namespace {

/// Folds a 4-lane accumulator as (l0+l1) + (l2+l3) — fixed order, so AVX2
/// reductions are deterministic run-to-run even though they differ from the
/// reference's sequential order.
NURD_AVX2 inline double fold4(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);          // {l0+l2, l1+l3}
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

NURD_AVX2 double avx2_dot(double init, const double* a, const double* b,
                          std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double s = init + fold4(acc);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

NURD_AVX2 double avx2_dot_sub(double init, const double* a, const double* b,
                              std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double s = init - fold4(acc);
  for (; i < n; ++i) s -= a[i] * b[i];
  return s;
}

NURD_AVX2 double avx2_squared_l2(const double* a, const double* b,
                                 std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double s = fold4(acc);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

NURD_AVX2 void avx2_pair_sum_indexed(const double* a, const double* b,
                                     const std::size_t* idx, std::size_t n,
                                     double* sum_a, double* sum_b) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    acc_a = _mm256_add_pd(acc_a, _mm256_i64gather_pd(a, v, 8));
    acc_b = _mm256_add_pd(acc_b, _mm256_i64gather_pd(b, v, 8));
  }
  double sa = fold4(acc_a);
  double sb = fold4(acc_b);
  for (; i < n; ++i) {
    sa += a[idx[i]];
    sb += b[idx[i]];
  }
  *sum_a = sa;
  *sum_b = sb;
}

NURD_AVX2 void avx2_axpy(double alpha, const double* x, double* y,
                         std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

NURD_AVX2 void avx2_vsub(double* out, const double* a, const double* b,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

NURD_AVX2 void avx2_gemv(const double* a, std::size_t rows, std::size_t cols,
                         const double* x, double bias, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = avx2_dot(bias, a + r * cols, x, cols);
  }
}

NURD_AVX2 void avx2_syrk_rank1_upper(double* h, std::size_t ld,
                                     const double* row, std::size_t d,
                                     double v) {
  for (std::size_t j = 0; j < d; ++j) {
    // h[j·ld + k] += (v·row[j])·row[k] — elementwise per entry, bit-equal to
    // the reference (each entry gets exactly one mul+add per call).
    avx2_axpy(v * row[j], row + j, h + j * ld + j, d - j);
  }
}

NURD_AVX2 void avx2_squared_l2_rows(const double* a, std::size_t rows,
                                    std::size_t cols, const double* x,
                                    double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = avx2_squared_l2(a + r * cols, x, cols);
  }
}

NURD_AVX2 void avx2_hist_accumulate(double* bins,
                                    const std::uint16_t* bin_of_row,
                                    const std::size_t* rows, std::size_t n,
                                    const double* grad, const double* hess) {
  // One (G, H, count, pad) bin is exactly one vector: a row's contribution
  // is a single load/add/store. Rows are processed in order (two rows
  // hitting the same bin are serial adds), so this is bit-identical to the
  // reference accumulation.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = rows[i];
    double* bin = bins + std::size_t{bin_of_row[r]} * kHistBinStride;
    const __m256d inc = _mm256_set_pd(0.0, 1.0, hess[r], grad[r]);
    _mm256_storeu_pd(bin, _mm256_add_pd(_mm256_loadu_pd(bin), inc));
  }
}

NURD_AVX2 void avx2_hist_subtract(double* parent, const double* child,
                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(parent + i,
                     _mm256_sub_pd(_mm256_loadu_pd(parent + i),
                                   _mm256_loadu_pd(child + i)));
  }
  for (; i < n; ++i) parent[i] -= child[i];
}

NURD_AVX2 void avx2_bin_index(const double* values, std::size_t n, double lo,
                              double hi, double width, std::size_t n_bins,
                              std::uint32_t* out) {
  // Same arithmetic as the reference (division, then truncation), so bins
  // are bit-identical; the vector lanes just do four divisions at once.
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  const __m256d vw = _mm256_set1_pd(width);
  const auto last = static_cast<std::uint32_t>(n_bins - 1);
  const __m128i vlast = _mm_set1_epi32(static_cast<int>(last));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const __m256d q = _mm256_div_pd(_mm256_sub_pd(v, vlo), vw);
    // Truncating convert matches the scalar static_cast; in-range values
    // (lo < v < hi) keep q within int32 because q < n_bins ≤ 2^32… but the
    // clamp below also covers any dangling lane, and the ≤lo / ≥hi lanes are
    // overwritten by the blends.
    __m128i b = _mm256_cvttpd_epi32(q);
    // A ≤lo lane can truncate-saturate to INT32_MIN, which min_epu32 treats
    // as huge-unsigned and clamps to `last`; the boundary fixup below then
    // overwrites it, matching the scalar branches exactly.
    b = _mm_min_epu32(b, vlast);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), b);
    // v ≤ lo → 0, v ≥ hi → last (rare lanes; patch them scalar).
    const int le_bits =
        _mm256_movemask_pd(_mm256_cmp_pd(v, vlo, _CMP_LE_OQ));
    const int ge_bits =
        _mm256_movemask_pd(_mm256_cmp_pd(v, vhi, _CMP_GE_OQ));
    if ((le_bits | ge_bits) != 0) {
      for (int l = 0; l < 4; ++l) {
        if ((le_bits >> l) & 1) {
          out[i + static_cast<std::size_t>(l)] = 0;
        } else if ((ge_bits >> l) & 1) {
          out[i + static_cast<std::size_t>(l)] = last;
        }
      }
    }
  }
  for (; i < n; ++i) {
    const double v = values[i];
    if (v <= lo) {
      out[i] = 0;
    } else if (v >= hi) {
      out[i] = last;
    } else {
      const auto b = static_cast<std::uint32_t>((v - lo) / width);
      out[i] = b < last ? b : last;
    }
  }
}

// ---- vector exp / sigmoid --------------------------------------------------

/// exp(x) for x ∈ [−708, 709]: Cody–Waite range reduction (two-part ln 2)
/// plus a degree-13 Taylor polynomial on |r| ≤ ln(2)/2 (max poly error
/// ≈ 4e-18 relative), scaled by 2^k via exponent insertion. Inputs outside
/// the range must be clamped by the caller.
NURD_AVX2 inline __m256d exp_pd(__m256d x) {
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634074);
  const __m256d ln2_hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d ln2_lo = _mm256_set1_pd(1.42860682030941723212e-6);

  const __m256d k_d = _mm256_round_pd(
      _mm256_mul_pd(x, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_sub_pd(x, _mm256_mul_pd(k_d, ln2_hi));
  r = _mm256_sub_pd(r, _mm256_mul_pd(k_d, ln2_lo));

  // Horner over 1/13!, …, 1/2!, 1, 1.
  const double coef[] = {1.0 / 6227020800.0, 1.0 / 479001600.0,
                         1.0 / 39916800.0,   1.0 / 3628800.0,
                         1.0 / 362880.0,     1.0 / 40320.0,
                         1.0 / 5040.0,       1.0 / 720.0,
                         1.0 / 120.0,        1.0 / 24.0,
                         1.0 / 6.0,          1.0 / 2.0,
                         1.0,                1.0};
  __m256d p = _mm256_set1_pd(coef[0]);
  for (std::size_t c = 1; c < sizeof(coef) / sizeof(coef[0]); ++c) {
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(coef[c]));
  }

  // 2^k via the exponent field; |k| ≤ 1075 for clamped inputs, and results
  // that would be subnormal are handled by the caller's clamp (≥ 2^-1022).
  const __m128i k32 = _mm256_cvtpd_epi32(k_d);
  const __m256i k64 = _mm256_cvtepi32_epi64(k32);
  const __m256i expo =
      _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(p, _mm256_castsi256_pd(expo));
}

NURD_AVX2 void avx2_sigmoid(const double* z, double* out, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d lo_clamp = _mm256_set1_pd(-708.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d zi = _mm256_loadu_pd(z + i);
    // e = exp(−|z|), clamped so exp stays normal. max/min replace NaN lanes
    // with the other operand, so NaN inputs are re-blended in at the end.
    const __m256d neg_abs = _mm256_min_pd(zi, _mm256_sub_pd(zero, zi));
    const __m256d e = exp_pd(_mm256_max_pd(neg_abs, lo_clamp));
    const __m256d s = _mm256_div_pd(one, _mm256_add_pd(one, e));
    // z ≥ 0 → s; z < 0 → 1−s = e/(1+e).
    const __m256d neg = _mm256_cmp_pd(zi, zero, _CMP_LT_OQ);
    __m256d res = _mm256_blendv_pd(s, _mm256_sub_pd(one, s), neg);
    // NaN propagation: unordered lanes forward the input NaN itself.
    const __m256d unord = _mm256_cmp_pd(zi, zi, _CMP_UNORD_Q);
    res = _mm256_blendv_pd(res, zi, unord);
    _mm256_storeu_pd(out + i, res);
  }
  // Scalar tail: the exact stats.cpp sigmoid (std::exp handles the extreme
  // ranges the vector path clamps), so tail lanes are bit-equal to reference.
  for (; i < n; ++i) {
    const double zi = z[i];
    if (zi >= 0.0) {
      const double e = std::exp(-zi);
      out[i] = 1.0 / (1.0 + e);
    } else {
      const double e = std::exp(zi);
      out[i] = e / (1.0 + e);
    }
  }
}

constexpr KernelOps kAvx2Ops = {
    "avx2",             avx2_dot,
    avx2_dot_sub,       avx2_squared_l2,
    avx2_pair_sum_indexed, avx2_axpy,
    avx2_vsub,          avx2_gemv,
    avx2_syrk_rank1_upper, avx2_squared_l2_rows,
    avx2_hist_accumulate, avx2_hist_subtract,
    avx2_bin_index,     avx2_sigmoid,
};

}  // namespace

namespace detail {
const KernelOps* avx2_ops() { return &kAvx2Ops; }
}  // namespace detail

}  // namespace nurd::kernel

#else  // non-x86 build: no AVX2 table.

namespace nurd::kernel::detail {
const KernelOps* avx2_ops() { return nullptr; }
}  // namespace nurd::kernel::detail

#endif
