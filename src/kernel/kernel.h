// Pluggable SIMD kernel-dispatch layer for the ML hot loops.
//
// Every refit hot path — histogram accumulation and sibling subtraction in
// the tree builder, the Newton-step products in the logistic solver, batched
// score/sigmoid/loss-gradient updates in the boosting engine, and the
// squared-L2 distance kernels behind kNN / k-means — calls these primitives
// through one process-global dispatch table instead of open-coding scalar
// loops. Backends:
//
//   * kReference — portable scalar code, THE bit-exact golden path. Each
//     primitive reproduces the exact floating-point accumulation order of
//     the pre-kernel scalar loops, so a run under the reference backend is
//     bit-identical to the pre-dispatch library. This is the backend the
//     golden-parity suite pins, and the default.
//   * kAvx2 — AVX2 intrinsics (x86-64, compiled via per-function target
//     attributes, selected only after runtime CPUID detection). Elementwise
//     primitives (axpy, vsub, hist_accumulate, hist_subtract, syrk row
//     updates, bin_index) are bit-identical to the reference; REDUCTIONS
//     (dot, dot_sub, squared_l2, pair_sum_indexed, gemv) use vector partial
//     sums and sigmoid uses a vector exp, so results are tolerance-bound,
//     not bit-equal. tests/test_kernel.cpp holds the AVX2 backend to those
//     tolerances per primitive and end-to-end over all Table-3 methods.
//   * kNeon — compile-time stub for aarch64 builds; currently forwards to
//     the reference implementations so the dispatch plumbing (env override,
//     bench columns, CI matrix) is exercised on ARM before tuned NEON
//     kernels land.
//
// Selection: nurd::kernel::set_backend() programmatically, or the
// NURD_KERNEL_BACKEND environment variable (reference | avx2 | neon | auto),
// read once on first use. `auto` picks best_available(). Unset defaults to
// reference — determinism first; benches and the CI matrix leg opt into
// acceleration explicitly.
//
// Later backends (BLAS-backed linalg, GPU offload) plug in by providing
// another KernelOps table; call sites never change.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nurd::kernel {

/// Doubles per histogram bin in the tree builder's flat histograms:
/// (G, H, count, pad). The pad lane makes one bin exactly one AVX2 vector,
/// so the accumulate inner loop is a single load/add/store per row.
inline constexpr std::size_t kHistBinStride = 4;

enum class Backend {
  kReference,  ///< scalar, bit-exact golden path (default)
  kAvx2,       ///< AVX2, runtime-detected, tolerance-bound reductions
  kNeon,       ///< aarch64 stub (forwards to reference for now)
};

/// One backend's implementation of every primitive. All pointers may be
/// unaligned (the accelerated backends use unaligned loads); 32-byte
/// alignment (common/aligned.h) is a throughput bonus, never a requirement.
/// n == 0 is valid everywhere and touches no memory.
struct KernelOps {
  const char* name;  ///< "reference" | "avx2" | "neon"

  // ---- reductions (reference: sequential from `init` in index order) ----
  /// init + Σ a[i]·b[i]
  double (*dot)(double init, const double* a, const double* b, std::size_t n);
  /// init − Σ a[i]·b[i] (the Cholesky/solve inner-loop shape)
  double (*dot_sub)(double init, const double* a, const double* b,
                    std::size_t n);
  /// Σ (a[i]−b[i])²
  double (*squared_l2)(const double* a, const double* b, std::size_t n);
  /// *sum_a = Σ a[idx[i]], *sum_b = Σ b[idx[i]] — the (G, H) node totals.
  void (*pair_sum_indexed)(const double* a, const double* b,
                           const std::size_t* idx, std::size_t n,
                           double* sum_a, double* sum_b);

  // ---- elementwise (bit-identical across all backends) ----
  /// y[i] += alpha·x[i]
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  /// out[i] = a[i] − b[i]
  void (*vsub)(double* out, const double* a, const double* b, std::size_t n);

  // ---- small dense matrix products ----
  /// out[r] = bias + Σ_c a[r·cols + c]·x[c]  (row-major A, one dot per row)
  void (*gemv)(const double* a, std::size_t rows, std::size_t cols,
               const double* x, double bias, double* out);
  /// Rank-1 SYRK-lite update of a row-major symmetric matrix's upper
  /// triangle: h[j·ld + k] += (v·row[j])·row[k] for 0 ≤ j ≤ k < d.
  void (*syrk_rank1_upper)(double* h, std::size_t ld, const double* row,
                           std::size_t d, double v);
  /// out[r] = Σ_c (a[r·cols + c] − x[c])²  (batched squared-L2: kNN, k-means)
  void (*squared_l2_rows)(const double* a, std::size_t rows, std::size_t cols,
                          const double* x, double* out);

  // ---- histogram (kHistBinStride-strided (G, H, count, pad) bins) ----
  /// For each r in rows: bins[bin_of_row[r]·4 + {0,1,2}] += {grad[r],
  /// hess[r], 1.0}. Rows are processed in order (serial per-bin adds), so
  /// every backend is bit-identical here.
  void (*hist_accumulate)(double* bins, const std::uint16_t* bin_of_row,
                          const std::size_t* rows, std::size_t n,
                          const double* grad, const double* hess);
  /// parent[k] −= child[k] (sibling subtraction; n counts doubles)
  void (*hist_subtract)(double* parent, const double* child, std::size_t n);

  // ---- fixed-width binning (common/histogram.cpp) ----
  /// out[i] = Histogram::bin_of(values[i]) for an equal-width histogram:
  /// v ≤ lo → 0, v ≥ hi → n_bins−1, else min(⌊(v−lo)/width⌋, n_bins−1).
  /// Division (not multiply-by-reciprocal) in every backend, so bins are
  /// bit-identical across backends.
  void (*bin_index)(const double* values, std::size_t n, double lo, double hi,
                    double width, std::size_t n_bins, std::uint32_t* out);

  // ---- nonlinear ----
  /// out[i] = 1/(1+e^(−z[i])), the overflow-safe form of common/stats.h
  /// sigmoid(). Reference is bit-identical to nurd::sigmoid; AVX2 uses a
  /// vector exp (|Δ| ≲ 1e-14 relative).
  void (*sigmoid)(const double* z, double* out, std::size_t n);
};

/// The active dispatch table. First call resolves NURD_KERNEL_BACKEND; an
/// unset/empty variable selects the reference backend. Hot loops should
/// hoist `const auto& k = kernel::ops();` out of the loop.
const KernelOps& ops();

/// The reference table (always available; what tests diff against).
const KernelOps& reference_ops();

/// True when `b` can run on this build + CPU (kReference: always; kAvx2:
/// x86-64 build and CPUID reports AVX2; kNeon: aarch64 build).
bool backend_available(Backend b);

/// The fastest available backend (avx2 > neon > reference).
Backend best_available();

/// Switches the process-global dispatch table. NURD_CHECK-fails when `b` is
/// not available. Takes precedence over the env var from this point on.
/// Not intended to be raced against in-flight kernel calls: switch between
/// fits (tests and benches switch at phase boundaries).
void set_backend(Backend b);

/// The currently active backend / its printable name (for bench output and
/// log lines: "the backend that actually ran").
Backend active_backend();
const char* backend_name();

namespace detail {
/// Per-backend tables; nullptr when compiled out of this build. Runtime
/// availability is still gated by backend_available().
const KernelOps* avx2_ops();
const KernelOps* neon_ops();
}  // namespace detail

}  // namespace nurd::kernel
