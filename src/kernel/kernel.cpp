#include "kernel/kernel.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/check.h"
#include "common/stats.h"

namespace nurd::kernel {

namespace {

// ---- reference backend -----------------------------------------------------
// Each primitive is the EXACT scalar loop the call sites ran before the
// dispatch layer existed — same accumulation order, same operations — so the
// reference backend is bit-identical to the pre-kernel library. Do not
// "optimize" these (no reassociation, no FMA): they are the golden path the
// parity suite pins the accelerated backends against.

double ref_dot(double init, const double* a, const double* b, std::size_t n) {
  double s = init;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double ref_dot_sub(double init, const double* a, const double* b,
                   std::size_t n) {
  double s = init;
  for (std::size_t i = 0; i < n; ++i) s -= a[i] * b[i];
  return s;
}

double ref_squared_l2(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

void ref_pair_sum_indexed(const double* a, const double* b,
                          const std::size_t* idx, std::size_t n,
                          double* sum_a, double* sum_b) {
  double sa = 0.0, sb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sa += a[idx[i]];
    sb += b[idx[i]];
  }
  *sum_a = sa;
  *sum_b = sb;
}

void ref_axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ref_vsub(double* out, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void ref_gemv(const double* a, std::size_t rows, std::size_t cols,
              const double* x, double bias, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = ref_dot(bias, a + r * cols, x, cols);
  }
}

void ref_syrk_rank1_upper(double* h, std::size_t ld, const double* row,
                          std::size_t d, double v) {
  for (std::size_t j = 0; j < d; ++j) {
    const double vj = v * row[j];
    double* hrow = h + j * ld;
    for (std::size_t k = j; k < d; ++k) hrow[k] += vj * row[k];
  }
}

void ref_squared_l2_rows(const double* a, std::size_t rows, std::size_t cols,
                         const double* x, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = ref_squared_l2(a + r * cols, x, cols);
  }
}

void ref_hist_accumulate(double* bins, const std::uint16_t* bin_of_row,
                         const std::size_t* rows, std::size_t n,
                         const double* grad, const double* hess) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = rows[i];
    double* bin = bins + std::size_t{bin_of_row[r]} * kHistBinStride;
    bin[0] += grad[r];
    bin[1] += hess[r];
    bin[2] += 1.0;
  }
}

void ref_hist_subtract(double* parent, const double* child, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) parent[k] -= child[k];
}

void ref_bin_index(const double* values, std::size_t n, double lo, double hi,
                   double width, std::size_t n_bins, std::uint32_t* out) {
  const auto last = static_cast<std::uint32_t>(n_bins - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = values[i];
    if (v <= lo) {
      out[i] = 0;
    } else if (v >= hi) {
      out[i] = last;
    } else {
      const auto b = static_cast<std::uint32_t>((v - lo) / width);
      out[i] = b < last ? b : last;
    }
  }
}

void ref_sigmoid(const double* z, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = nurd::sigmoid(z[i]);
}

constexpr KernelOps kReferenceOps = {
    "reference",        ref_dot,
    ref_dot_sub,        ref_squared_l2,
    ref_pair_sum_indexed, ref_axpy,
    ref_vsub,           ref_gemv,
    ref_syrk_rank1_upper, ref_squared_l2_rows,
    ref_hist_accumulate, ref_hist_subtract,
    ref_bin_index,      ref_sigmoid,
};

// ---- dispatch --------------------------------------------------------------

std::atomic<const KernelOps*> g_ops{nullptr};
std::once_flag g_env_once;

const KernelOps* table_of(Backend b) {
  switch (b) {
    case Backend::kReference:
      return &kReferenceOps;
    case Backend::kAvx2:
      return detail::avx2_ops();
    case Backend::kNeon:
      return detail::neon_ops();
  }
  return nullptr;
}

/// Resolves NURD_KERNEL_BACKEND once. Unknown or unavailable values warn on
/// stderr and fall back to the reference backend (a bench run on a non-AVX2
/// box should degrade, not die).
void init_from_env() {
  // Read exactly once, under std::call_once before any worker threads
  // exist; nothing in the process calls setenv.
  const char* env = std::getenv("NURD_KERNEL_BACKEND");  // NOLINT(concurrency-mt-unsafe)
  const KernelOps* chosen = &kReferenceOps;
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "reference") == 0) {
      chosen = &kReferenceOps;
    } else if (std::strcmp(env, "auto") == 0) {
      chosen = table_of(best_available());
    } else if (std::strcmp(env, "avx2") == 0 ||
               std::strcmp(env, "neon") == 0) {
      const Backend want =
          std::strcmp(env, "avx2") == 0 ? Backend::kAvx2 : Backend::kNeon;
      if (backend_available(want)) {
        chosen = table_of(want);
      } else {
        std::fprintf(stderr,
                     "nurd: NURD_KERNEL_BACKEND=%s not available on this "
                     "build/CPU; using reference\n",
                     env);
      }
    } else {
      std::fprintf(stderr,
                   "nurd: unknown NURD_KERNEL_BACKEND=%s (want reference, "
                   "avx2, neon, or auto); using reference\n",
                   env);
    }
  }
  g_ops.store(chosen, std::memory_order_release);
}

const KernelOps* active_table() {
  const KernelOps* p = g_ops.load(std::memory_order_acquire);
  if (p == nullptr) {
    std::call_once(g_env_once, init_from_env);
    p = g_ops.load(std::memory_order_acquire);
  }
  return p;
}

}  // namespace

const KernelOps& ops() { return *active_table(); }

const KernelOps& reference_ops() { return kReferenceOps; }

bool backend_available(Backend b) {
  switch (b) {
    case Backend::kReference:
      return true;
    case Backend::kAvx2: {
      const KernelOps* t = detail::avx2_ops();
#if defined(__x86_64__) || defined(_M_X64)
      return t != nullptr && __builtin_cpu_supports("avx2");
#else
      return t != nullptr;
#endif
    }
    case Backend::kNeon:
      return detail::neon_ops() != nullptr;
  }
  return false;
}

Backend best_available() {
  if (backend_available(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_available(Backend::kNeon)) return Backend::kNeon;
  return Backend::kReference;
}

void set_backend(Backend b) {
  NURD_CHECK(backend_available(b),
             "requested kernel backend is not available on this build/CPU");
  // Resolve the env var first so a later first-use cannot overwrite this
  // explicit selection.
  (void)active_table();
  g_ops.store(table_of(b), std::memory_order_release);
}

Backend active_backend() {
  const KernelOps* p = active_table();
  if (p == detail::avx2_ops() && p != nullptr) return Backend::kAvx2;
  if (p == detail::neon_ops() && p != nullptr) return Backend::kNeon;
  return Backend::kReference;
}

const char* backend_name() { return active_table()->name; }

}  // namespace nurd::kernel
