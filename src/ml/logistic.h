// L2-regularized logistic regression fitted by Newton–Raphson (IRLS).
// This is NURD's propensity-score estimator gt (paper §4.2, citing Cepeda
// et al. 2003 for PS-by-logistic-regression) and the PU-EN nontraditional
// classifier's lightweight alternative.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/scaler.h"

namespace nurd::ml {

/// Logistic regression hyperparameters.
struct LogisticParams {
  double l2 = 1.0;          ///< ridge penalty on weights (not intercept)
  int max_iterations = 25;  ///< Newton iterations
  double tolerance = 1e-8;  ///< stop when max |step| falls below this
  /// Start refits from the previous fit's weights instead of zero. The
  /// previous solution is mapped through the standardization change (old
  /// scaler → raw space → new scaler), so it is an exact re-expression of
  /// the last decision function — adjacent checkpoints' propensity fits then
  /// converge in a couple of Newton steps instead of a cold solve. Off by
  /// default: a cold fit is the reference (RefitPolicy::kFull) behavior.
  bool warm_start = false;
};

/// Binary logistic regression: P(y=1|x) = σ(w·x̃ + b) on standardized
/// features. Labels are {0,1}. Sample weights supported (used by baselines
/// that oversample).
class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticParams params = {});

  /// Fits to rows of `x` with labels `y` in {0,1}. Optional per-sample
  /// weights (empty span = uniform).
  void fit(const Matrix& x, std::span<const double> y,
           std::span<const double> sample_weight = {});

  /// P(y=1|row).
  double predict_proba(std::span<const double> row) const;

  /// P(y=1) for every row of `x`.
  std::vector<double> predict_proba(const Matrix& x) const;

  /// Raw decision value w·x̃ + b (log-odds).
  double decision(std::span<const double> row) const;

  bool fitted() const { return fitted_; }
  const std::vector<double>& weights() const { return w_; }
  double intercept() const { return b_; }

 private:
  LogisticParams params_;
  StandardScaler scaler_;
  std::vector<double> w_;
  double b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace nurd::ml
