// Linear SVM trained with Pegasos-style SGD on the hinge loss. This is the
// Wrangler baseline's classifier (Yadwadkar et al. 2014 use linear SVMs for
// interpretability) and the base learner of the PU-BG bagging ensemble.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/scaler.h"

namespace nurd::ml {

/// Linear SVM hyperparameters.
struct SvmParams {
  double lambda = 1e-3;  ///< L2 regularization strength
  int epochs = 30;       ///< passes over the data
  std::uint64_t seed = 11;
};

/// Binary linear SVM. Labels are {0,1} externally, mapped to {−1,+1}
/// internally. Per-sample weights allow class rebalancing (Wrangler's
/// straggler oversampling is expressed as weights).
class LinearSVM {
 public:
  explicit LinearSVM(SvmParams params = {});

  /// Fits with Pegasos SGD. Optional per-sample weights scale each sample's
  /// hinge subgradient (empty = uniform).
  void fit(const Matrix& x, std::span<const double> y,
           std::span<const double> sample_weight = {});

  /// Signed decision value w·x̃ + b; positive predicts class 1.
  double decision(std::span<const double> row) const;

  /// Predicted class in {0,1}.
  double predict(std::span<const double> row) const;

  /// Decision values for every row.
  std::vector<double> decision(const Matrix& x) const;

  bool fitted() const { return fitted_; }

 private:
  SvmParams params_;
  StandardScaler scaler_;
  std::vector<double> w_;
  double b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace nurd::ml
