#include "ml/linear_svm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace nurd::ml {

LinearSVM::LinearSVM(SvmParams params) : params_(params) {
  NURD_CHECK(params_.lambda > 0.0, "lambda must be positive");
  NURD_CHECK(params_.epochs > 0, "epochs must be positive");
}

void LinearSVM::fit(const Matrix& x, std::span<const double> y,
                    std::span<const double> sample_weight) {
  NURD_CHECK(x.rows() == y.size(), "row/label count mismatch");
  NURD_CHECK(x.rows() > 0, "cannot fit on empty data");
  NURD_CHECK(sample_weight.empty() || sample_weight.size() == y.size(),
             "sample weight length mismatch");

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const Matrix xs = scaler_.fit_transform(x);

  w_.assign(d, 0.0);
  b_ = 0.0;
  Rng rng(params_.seed);

  // Pegasos: step size 1/(λ·t); the bias is updated without regularization.
  std::size_t t = 0;
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    const auto order = rng.permutation(n);
    for (std::size_t idx : order) {
      ++t;
      const double eta = 1.0 / (params_.lambda * static_cast<double>(t));
      const double label = y[idx] > 0.5 ? 1.0 : -1.0;
      const double sw = sample_weight.empty() ? 1.0 : sample_weight[idx];
      auto row = xs.row(idx);
      double margin = b_;
      for (std::size_t j = 0; j < d; ++j) margin += w_[j] * row[j];
      margin *= label;

      const double shrink = 1.0 - eta * params_.lambda;
      for (auto& wj : w_) wj *= shrink;
      if (margin < 1.0) {
        for (std::size_t j = 0; j < d; ++j) {
          w_[j] += eta * sw * label * row[j];
        }
        b_ += eta * sw * label;
      }
    }
  }
  fitted_ = true;
}

double LinearSVM::decision(std::span<const double> row) const {
  NURD_CHECK(fitted_, "model not fitted");
  std::vector<double> r(row.begin(), row.end());
  scaler_.transform_row(r);
  double z = b_;
  for (std::size_t j = 0; j < w_.size(); ++j) z += w_[j] * r[j];
  return z;
}

double LinearSVM::predict(std::span<const double> row) const {
  return decision(row) > 0.0 ? 1.0 : 0.0;
}

std::vector<double> LinearSVM::decision(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = decision(x.row(i));
  return out;
}

}  // namespace nurd::ml
