#include "ml/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "kernel/kernel.h"

namespace nurd::ml {

void Loss::grad_hess_batch(std::span<const Target> targets,
                           std::span<const double> score,
                           std::span<double> grad,
                           std::span<double> hess) const {
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto gh = grad_hess(targets[i], score[i]);
    grad[i] = gh.grad;
    hess[i] = gh.hess;
  }
}

double SquaredLoss::init_score(std::span<const Target> targets) const {
  if (targets.empty()) return 0.0;
  double s = 0.0;
  for (const auto& t : targets) s += t.value;
  return s / static_cast<double>(targets.size());
}

GradHess SquaredLoss::grad_hess(const Target& target, double score) const {
  return {score - target.value, 1.0};
}

void SquaredLoss::grad_hess_batch(std::span<const Target> targets,
                                  std::span<const double> score,
                                  std::span<double> grad,
                                  std::span<double> hess) const {
  for (std::size_t i = 0; i < targets.size(); ++i) {
    grad[i] = score[i] - targets[i].value;
    hess[i] = 1.0;
  }
}

double LogisticLoss::init_score(std::span<const Target> targets) const {
  if (targets.empty()) return 0.0;
  double pos = 0.0;
  for (const auto& t : targets) pos += t.value;
  const double p = std::clamp(pos / static_cast<double>(targets.size()),
                              1e-6, 1.0 - 1e-6);
  return std::log(p / (1.0 - p));
}

GradHess LogisticLoss::grad_hess(const Target& target, double score) const {
  const double p = sigmoid(score);
  return {p - target.value, std::max(p * (1.0 - p), 1e-12)};
}

void LogisticLoss::grad_hess_batch(std::span<const Target> targets,
                                   std::span<const double> score,
                                   std::span<double> grad,
                                   std::span<double> hess) const {
  // One batched sigmoid (kernel-dispatched; hess doubles as the p scratch),
  // then the same per-element grad/hess arithmetic as the scalar path.
  kernel::ops().sigmoid(score.data(), hess.data(), score.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const double p = hess[i];
    grad[i] = p - targets[i].value;
    hess[i] = std::max(p * (1.0 - p), 1e-12);
  }
}

double LogisticLoss::transform(double score) const { return sigmoid(score); }

TobitLoss::TobitLoss(double sigma) : sigma_(sigma) {
  NURD_CHECK(sigma > 0.0, "Tobit sigma must be positive");
}

double TobitLoss::init_score(std::span<const Target> targets) const {
  // Mean of uncensored values; censored values enter as lower bounds only.
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& t : targets) {
    if (!t.censored) {
      s += t.value;
      ++n;
    }
  }
  if (n == 0) {
    for (const auto& t : targets) s += t.value;
    n = targets.size();
  }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

double TobitLoss::inverse_mills(double u) {
  // φ(u)/Φ(u). For u below about −8, Φ underflows relative to φ; use the
  // asymptotic expansion φ(u)/Φ(u) ≈ −u + 1/(−u) − ... which is accurate to
  // ~1e-12 there.
  if (u < -8.0) {
    const double a = -u;
    return a + 1.0 / a - 2.0 / (a * a * a);
  }
  const double cdf = std::max(normal_cdf(u), 1e-300);
  return normal_pdf(u) / cdf;
}

GradHess TobitLoss::grad_hess(const Target& target, double score) const {
  // The raw Tobit NLL carries a 1/σ² curvature, which would make leaf
  // Hessian sums vanish against the tree's λ regularization whenever σ is
  // large (latencies are in seconds). We therefore optimize σ²·NLL: the
  // uncensored branch becomes exactly the squared loss and the censored
  // branch stays on the same per-sample scale regardless of σ.
  if (!target.censored) {
    return {score - target.value, 1.0};
  }
  // Right-censored at c = target.value: σ²·(−log Φ((F − c)/σ)).
  const double u = (score - target.value) / sigma_;
  const double mills = inverse_mills(u);
  const double grad = -mills * sigma_;
  // d/du [−log Φ(u)] = −mills(u);  second derivative = mills(u)·(u + mills(u)).
  const double hess = std::max(mills * (u + mills), 1e-12);
  return {grad, hess};
}

void TobitLoss::grad_hess_batch(std::span<const Target> targets,
                                std::span<const double> score,
                                std::span<double> grad,
                                std::span<double> hess) const {
  // Qualified call: devirtualized per-sample math, one dispatch per batch.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto gh = TobitLoss::grad_hess(targets[i], score[i]);
    grad[i] = gh.grad;
    hess[i] = gh.hess;
  }
}

}  // namespace nurd::ml
