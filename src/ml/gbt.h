// Gradient boosting over regression trees with a pluggable second-order
// loss. This single engine provides:
//   * GBTR (squared loss)            — the paper's supervised baseline and
//                                      NURD's latency predictor ht
//   * boosted logistic classifier    — XGBOD / PU-EN base learner
//   * Grabit (Tobit loss)            — censored-regression baseline
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "ml/loss.h"
#include "ml/tree.h"

namespace nurd::ml {

/// Boosting hyperparameters (tree params embedded). The split backend,
/// `tree.max_bins`, and the exact-mode fallback cutoff all live in `tree`;
/// when the histogram backend is active, fit() quantile-bins every feature
/// once and shares the binning across all boosting rounds.
struct GbtParams {
  int n_rounds = 50;
  double learning_rate = 0.1;
  double subsample = 1.0;  ///< row subsampling fraction per round
  TreeParams tree;
  std::uint64_t seed = 7;
};

/// Newton-boosted tree ensemble. Fit once; predict is const and thread-safe.
class GradientBoosting {
 public:
  /// Constructs with a loss (owned) and hyperparameters.
  GradientBoosting(std::unique_ptr<Loss> loss, GbtParams params);

  /// Convenience: squared-loss regressor.
  static GradientBoosting regressor(GbtParams params = {});

  /// Convenience: logistic-loss classifier (predict() returns probability).
  static GradientBoosting classifier(GbtParams params = {});

  /// Convenience: Tobit-loss (Grabit) regressor with latent scale sigma.
  static GradientBoosting grabit(double sigma, GbtParams params = {});

  /// Fits the ensemble to rows of `x` with targets (value + censoring flag).
  void fit(const Matrix& x, std::span<const Target> targets);

  /// Fits with plain values (no censoring) — regression/classification path.
  void fit(const Matrix& x, std::span<const double> y);

  /// Transformed prediction for one row (identity for regression, probability
  /// for logistic).
  double predict(std::span<const double> row) const;

  /// Transformed predictions for every row of `x`.
  std::vector<double> predict(const Matrix& x) const;

  /// Raw (untransformed) boosted score for one row.
  double predict_raw(std::span<const double> row) const;

  /// Number of boosting rounds actually fitted.
  std::size_t tree_count() const { return trees_.size(); }

  /// Training loss trajectory is not retained; this reports the base score.
  double base_score() const { return base_score_; }

  bool fitted() const { return fitted_; }

 private:
  std::unique_ptr<Loss> loss_;
  GbtParams params_;
  std::vector<RegressionTree> trees_;
  double base_score_ = 0.0;
  bool fitted_ = false;
};

}  // namespace nurd::ml
