// Gradient boosting over regression trees with a pluggable second-order
// loss. This single engine provides:
//   * GBTR (squared loss)            — the paper's supervised baseline and
//                                      NURD's latency predictor ht
//   * boosted logistic classifier    — XGBOD / PU-EN base learner
//   * Grabit (Tobit loss)            — censored-regression baseline
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "ml/loss.h"
#include "ml/tree.h"

namespace nurd::ml {

/// Boosting hyperparameters (tree params embedded). The split backend,
/// `tree.max_bins`, and the exact-mode fallback cutoff all live in `tree`;
/// when the histogram backend is active, fit() quantile-bins every feature
/// once and shares the binning across all boosting rounds.
struct GbtParams {
  int n_rounds = 50;
  double learning_rate = 0.1;
  double subsample = 1.0;  ///< row subsampling fraction per round
  TreeParams tree;
  std::uint64_t seed = 7;
  /// Retain warm-start state across fits: the per-row training scores, the
  /// feature binner (edges frozen at the first histogram-scale fit), and the
  /// RNG stream, so continue_fit() can extend the ensemble on grown data
  /// instead of refitting from scratch. Costs O(n) doubles + the binner;
  /// leave off (the default) for one-shot fits — fit() itself is
  /// bit-identical either way.
  bool warm_start = false;
  /// Step-size factor for continue_fit() rounds relative to learning_rate
  /// (capped at 0.5 absolute). A damped rate recovers a moved row's residual
  /// only as 1−(1−rate)^rounds, so this is the knob that balances a warm
  /// continuation's tail tracking against overshoot — tuned per dataset (and
  /// for Grabit per method) through RegistryConfig so the warm path's
  /// macro-F1 stays within 0.01 of the full-refit reference (bench_refit
  /// --check). At the default 1.0, fit(a)+continue_fit(b) on unchanged data
  /// is bit-identical to fit(a+b).
  double warm_rate_factor = 1.0;
};

/// Newton-boosted tree ensemble. Fit once; predict is const and thread-safe.
class GradientBoosting {
 public:
  /// Constructs with a loss (owned) and hyperparameters.
  GradientBoosting(std::unique_ptr<Loss> loss, GbtParams params);

  /// Convenience: squared-loss regressor.
  static GradientBoosting regressor(GbtParams params = {});

  /// Convenience: logistic-loss classifier (predict() returns probability).
  static GradientBoosting classifier(GbtParams params = {});

  /// Convenience: Tobit-loss (Grabit) regressor with latent scale sigma.
  static GradientBoosting grabit(double sigma, GbtParams params = {});

  /// Fits the ensemble to rows of `x` with targets (value + censoring flag).
  void fit(const Matrix& x, std::span<const Target> targets);

  /// Fits with plain values (no censoring) — regression/classification path.
  void fit(const Matrix& x, std::span<const double> y);

  /// Warm-start continuation (requires params.warm_start and a prior fit):
  /// keeps every existing tree and boosts `rounds` more on the current data.
  /// Rows of `x` must be the previous fit's rows in their old relative order
  /// with any new rows spliced in at the (sorted) positions `inserted_rows`
  /// — empty means they were appended at the tail, the common convention.
  /// Prior rows are assumed unchanged except for the (new-layout) indices in
  /// `changed_rows`; inserted and changed rows pass through the ensemble
  /// once to refresh the cached training scores and histogram bins, every
  /// other row's cache is carried (or remapped) over. Targets may change
  /// freely between calls (each round recomputes gradients), which is how
  /// censored fits advance their horizon and Grabit re-scales σ.
  /// `rounds == 0` just absorbs the new/changed rows.
  ///
  /// Continuation rounds run at warm_rate_factor × learning_rate (capped at
  /// 0.5): the rows a continuation must absorb are exactly the
  /// just-revealed latency tail that the flag threshold reads, so the
  /// continuation trades a little of full boosting's shrinkage for a tail
  /// that tracks the reference refit much more closely.
  void continue_fit(const Matrix& x, std::span<const Target> targets,
                    int rounds, std::span<const std::size_t> changed_rows = {},
                    std::span<const std::size_t> inserted_rows = {});

  /// continue_fit with plain (uncensored) targets.
  void continue_fit(const Matrix& x, std::span<const double> y, int rounds,
                    std::span<const std::size_t> changed_rows = {},
                    std::span<const std::size_t> inserted_rows = {});

  /// Transformed prediction for one row (identity for regression, probability
  /// for logistic).
  double predict(std::span<const double> row) const;

  /// Transformed predictions for every row of `x`.
  std::vector<double> predict(const Matrix& x) const;

  /// Raw (untransformed) boosted score for one row.
  double predict_raw(std::span<const double> row) const;

  /// Number of boosting rounds actually fitted.
  std::size_t tree_count() const { return trees_.size(); }

  /// Rows covered by the last fit/continue_fit (0 unless warm_start): the
  /// warm-start bookkeeping callers use to detect "the training block grew
  /// since this model last saw it".
  std::size_t trained_rows() const { return n_trained_; }

  /// Rows covered by the last FULL fit() (0 unless warm_start). Warm-start
  /// policies use this for geometric refresh: once the data has grown well
  /// past the ensemble's from-scratch foundation (say 2x), a fresh fit costs
  /// amortized O(1) per checkpoint and clears accumulated early-data bias.
  std::size_t full_fit_rows() const { return n_full_fit_; }

  /// Replaces the loss for subsequent continue_fit rounds (and predict
  /// transforms). For losses with a data-dependent scale — Grabit re-derives
  /// σ from the finished set each checkpoint — a warm-started continuation
  /// swaps the loss in rather than rebuilding the ensemble.
  void set_loss(std::unique_ptr<Loss> loss);

  /// Training loss trajectory is not retained; this reports the base score.
  double base_score() const { return base_score_; }

  bool fitted() const { return fitted_; }

 private:
  /// The shared boosting loop: `rounds` gradient/tree/score iterations at
  /// step size `rate`, appending to trees_ (each tree remembers its own rate
  /// in tree_rate_). With `subset` empty every round trains on all rows of
  /// `x` (fit()'s path — subsampling applies); with a non-empty `subset` the
  /// rounds are active-set continuations: gradients and tree fits cover the
  /// subset only, while the score update still sweeps every row so the
  /// caches stay current.
  void boost(const Matrix& x, std::span<const Target> targets, int rounds,
             double rate, std::vector<double>& score,
             const FeatureBinner* binner, Rng& rng,
             std::span<const std::size_t> subset = {});

  std::unique_ptr<Loss> loss_;
  GbtParams params_;
  std::vector<RegressionTree> trees_;
  /// Per-tree step size. fit() trees all carry params.learning_rate;
  /// continue_fit() trees carry the continuation rate (see continue_fit),
  /// so the two can coexist in one ensemble.
  std::vector<double> tree_rate_;
  double base_score_ = 0.0;
  bool fitted_ = false;

  // Warm-start state, retained only when params_.warm_start.
  std::vector<double> train_score_;      ///< cached raw score per training row
  std::optional<FeatureBinner> binner_;  ///< frozen-edge binner
  Rng rng_{0};                           ///< continues fit()'s stream
  std::size_t n_trained_ = 0;            ///< rows covered by the last fit
  std::size_t n_full_fit_ = 0;           ///< rows covered by the last fit()
};

}  // namespace nurd::ml
