// Loss functions for second-order (Newton) gradient boosting. One tree
// engine serves three losses:
//   SquaredLoss  — GBTR baseline and NURD's latency predictor ht
//   LogisticLoss — boosted classifier (XGBOD, PU-EN base learner)
//   TobitLoss    — Grabit (Sigrist & Hirnschall 2019): Gaussian latent
//                  variable with right-censoring, for censored regression
//                  at each checkpoint's observation horizon τrun_t.
#pragma once

#include <memory>
#include <span>
#include <vector>

namespace nurd::ml {

/// First and second derivative of a loss at one sample.
struct GradHess {
  double grad = 0.0;
  double hess = 0.0;
};

/// Per-sample training target. `value` is the label (latency for regression,
/// 0/1 for classification); `censored` marks a right-censored observation
/// (the true value is only known to be ≥ `value`). Losses that do not model
/// censoring ignore the flag.
struct Target {
  double value = 0.0;
  bool censored = false;
};

/// Interface for twice-differentiable losses used by GradientBoosting.
class Loss {
 public:
  virtual ~Loss() = default;

  /// Constant initial model score F0 (e.g. mean for squared loss, log-odds
  /// for logistic).
  virtual double init_score(std::span<const Target> targets) const = 0;

  /// Gradient and Hessian of the loss w.r.t. the raw score at one sample.
  virtual GradHess grad_hess(const Target& target, double score) const = 0;

  /// Batched grad_hess over a whole training block — the boosting engine's
  /// per-round hot loop. One virtual dispatch per ROUND instead of one per
  /// sample; concrete losses override with direct loops (LogisticLoss routes
  /// its sigmoid through the kernel layer). Element i of grad/hess receives
  /// grad_hess(targets[i], score[i]) — every override is element-for-element
  /// identical to the scalar path under the reference backend.
  virtual void grad_hess_batch(std::span<const Target> targets,
                               std::span<const double> score,
                               std::span<double> grad,
                               std::span<double> hess) const;

  /// Maps a raw boosted score to the model's output space (identity for
  /// regression, sigmoid for logistic).
  virtual double transform(double score) const { return score; }
};

/// ½(y−F)² — plain least-squares boosting.
class SquaredLoss final : public Loss {
 public:
  double init_score(std::span<const Target> targets) const override;
  GradHess grad_hess(const Target& target, double score) const override;
  void grad_hess_batch(std::span<const Target> targets,
                       std::span<const double> score, std::span<double> grad,
                       std::span<double> hess) const override;
};

/// Binary cross-entropy on labels in {0,1}; raw score is the log-odds.
class LogisticLoss final : public Loss {
 public:
  double init_score(std::span<const Target> targets) const override;
  GradHess grad_hess(const Target& target, double score) const override;
  void grad_hess_batch(std::span<const Target> targets,
                       std::span<const double> score, std::span<double> grad,
                       std::span<double> hess) const override;
  double transform(double score) const override;
};

/// Tobit (type-I) loss with a Gaussian latent variable of fixed scale sigma:
/// uncensored samples contribute a squared-error term, right-censored samples
/// contribute −log Φ((F − c)/σ). This is the Grabit objective.
class TobitLoss final : public Loss {
 public:
  /// sigma > 0 is the latent noise scale; callers typically set it to the
  /// standard deviation of the uncensored targets.
  explicit TobitLoss(double sigma);

  double init_score(std::span<const Target> targets) const override;
  GradHess grad_hess(const Target& target, double score) const override;
  void grad_hess_batch(std::span<const Target> targets,
                       std::span<const double> score, std::span<double> grad,
                       std::span<double> hess) const override;

  double sigma() const { return sigma_; }

  /// Inverse Mills ratio φ(u)/Φ(u), numerically stable for u ≪ 0 where both
  /// terms underflow (asymptotic −u + tail expansion). Exposed for tests.
  static double inverse_mills(double u);

 private:
  double sigma_;
};

}  // namespace nurd::ml
