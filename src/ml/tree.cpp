#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/thread_pool.h"
#include "kernel/kernel.h"

namespace nurd::ml {

namespace {

struct SplitCandidate {
  double gain = -std::numeric_limits<double>::infinity();
  std::size_t feature = 0;
  double threshold = 0.0;
  std::size_t bin = 0;  // histogram backend: split after this bin
};

double leaf_objective(double g, double h, double lambda) {
  return -0.5 * g * g / (h + lambda);
}

/// The feature subset scanned at one node (all features, or a colsample
/// draw). Shared by both backends so they consume the Rng identically.
std::vector<std::size_t> node_features(std::size_t d, const TreeParams& params,
                                       Rng& rng) {
  if (params.colsample >= 1.0) {
    std::vector<std::size_t> features(d);
    std::iota(features.begin(), features.end(), std::size_t{0});
    return features;
  }
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(params.colsample * static_cast<double>(d))));
  return rng.sample_without_replacement(d, k);
}

/// Work is fanned out over the pool only when it dwarfs task overhead.
constexpr std::size_t kParallelWorkCutoff = 8192;

/// Quantile-sketch edges for one sorted value array: greedy bin packing at
/// ~n/max_bins rows per bin, cutting only between distinct values. With at
/// most `max_bins` distinct values every boundary gets an edge, making the
/// candidate set identical to exact greedy's.
std::vector<double> quantile_edges(const std::vector<double>& sorted,
                                   int max_bins) {
  std::vector<double> edges;
  const std::size_t n = sorted.size();
  if (n < 2) return edges;

  std::size_t distinct = 1;
  for (std::size_t i = 1; i < n; ++i) {
    distinct += sorted[i] != sorted[i - 1] ? 1 : 0;
  }

  // Every distinct value fits in its own bin: cut at every boundary so the
  // candidate set matches exact greedy's. This must not fall through to the
  // frequency-weighted pass below, which would starve low-count values
  // (e.g. a rare binary indicator) of their edge entirely.
  if (distinct <= static_cast<std::size_t>(max_bins)) {
    for (std::size_t i = 1; i < n; ++i) {
      if (sorted[i] != sorted[i - 1]) {
        edges.push_back(0.5 * (sorted[i - 1] + sorted[i]));
      }
    }
    return edges;
  }

  // More distinct values than bins: greedy packing at ~n/max_bins rows per
  // bin, cutting only between distinct values.
  const double target =
      static_cast<double>(n) / static_cast<double>(max_bins);
  const auto max_edges = static_cast<std::size_t>(max_bins - 1);
  double acc = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && sorted[j] == sorted[i]) ++j;
    acc += static_cast<double>(j - i);
    if (j < n && edges.size() < max_edges && acc >= target) {
      edges.push_back(0.5 * (sorted[i] + sorted[j]));
      acc = 0.0;
    }
    i = j;
  }
  return edges;
}

}  // namespace

bool histogram_enabled(const TreeParams& params, std::size_t n_rows) {
  switch (params.split) {
    case SplitMethod::kExact:
      return false;
    case SplitMethod::kHistogram:
      return true;
    case SplitMethod::kAuto:
      return n_rows >= params.exact_cutoff;
  }
  return false;
}

FeatureBinner::FeatureBinner(const Matrix& x,
                             std::span<const std::size_t> rows,
                             int max_bins) {
  NURD_CHECK(max_bins >= 2 && max_bins <= 4096,
             "max_bins must be in [2, 4096]");
  NURD_CHECK(!rows.empty(), "cannot bin from zero rows");
  n_rows_ = x.rows();
  n_cols_ = x.cols();
  edges_.resize(n_cols_);
  bins_.resize(n_cols_ * n_rows_);

  const auto bin_feature = [&](std::size_t f) {
    const auto col = x.col_view(f);
    std::vector<double> vals;
    vals.reserve(rows.size());
    for (const auto r : rows) vals.push_back(col[r]);
    std::sort(vals.begin(), vals.end());
    edges_[f] = quantile_edges(vals, max_bins);

    const auto& edges = edges_[f];
    auto* out = bins_.data() + f * n_rows_;
    for (std::size_t r = 0; r < n_rows_; ++r) {
      // Bin = index of the first edge ≥ value, so x ≤ edge(b) ⟺ bin ≤ b.
      const auto it =
          std::lower_bound(edges.begin(), edges.end(), col[r]);
      out[r] = static_cast<std::uint16_t>(it - edges.begin());
    }
  };

  if (n_rows_ * n_cols_ >= kParallelWorkCutoff) {
    ThreadPool::global().parallel_for(n_cols_, bin_feature);
  } else {
    for (std::size_t f = 0; f < n_cols_; ++f) bin_feature(f);
  }
}

void FeatureBinner::append_rows(const Matrix& x) {
  NURD_CHECK(n_cols_ == x.cols(), "binner width must match the matrix");
  NURD_CHECK(x.rows() >= n_rows_, "append_rows cannot shrink the binner");
  const std::size_t n_new = x.rows();
  if (n_new == n_rows_) return;

  // Column-major layout (the histogram build's locality) means growing the
  // row count re-strides every feature slice: one O(n·d) copy, but zero
  // sorting and zero edge work — the quantile sketch stays frozen.
  std::vector<std::uint16_t> grown(n_cols_ * n_new);
  for (std::size_t f = 0; f < n_cols_; ++f) {
    const auto* src = bins_.data() + f * n_rows_;
    auto* dst = grown.data() + f * n_new;
    std::copy(src, src + n_rows_, dst);
    const auto& edges = edges_[f];
    const auto col = x.col_view(f);
    for (std::size_t r = n_rows_; r < n_new; ++r) {
      const auto it = std::lower_bound(edges.begin(), edges.end(), col[r]);
      dst[r] = static_cast<std::uint16_t>(it - edges.begin());
    }
  }
  bins_ = std::move(grown);
  n_rows_ = n_new;
}

void FeatureBinner::insert_rows(const Matrix& x,
                                std::span<const std::size_t> inserted) {
  NURD_CHECK(n_cols_ == x.cols(), "binner width must match the matrix");
  NURD_CHECK(x.rows() == n_rows_ + inserted.size(),
             "inserted count must account for every new row");
  const std::size_t n_new = x.rows();
  if (inserted.empty()) return;
  // Validate the splice map before the merge-copy walks the old slices: an
  // unsorted or duplicated position would overrun them.
  for (std::size_t i = 0; i < inserted.size(); ++i) {
    NURD_CHECK(inserted[i] < n_new && (i == 0 || inserted[i] > inserted[i - 1]),
               "inserted positions must be strictly ascending and in range");
  }

  std::vector<std::uint16_t> grown(n_cols_ * n_new);
  for (std::size_t f = 0; f < n_cols_; ++f) {
    const auto* src = bins_.data() + f * n_rows_;
    auto* dst = grown.data() + f * n_new;
    const auto& edges = edges_[f];
    const auto col = x.col_view(f);
    std::size_t old_r = 0;
    std::size_t next = 0;
    for (std::size_t r = 0; r < n_new; ++r) {
      if (next < inserted.size() && inserted[next] == r) {
        const auto it = std::lower_bound(edges.begin(), edges.end(), col[r]);
        dst[r] = static_cast<std::uint16_t>(it - edges.begin());
        ++next;
      } else {
        dst[r] = src[old_r++];
      }
    }
  }
  bins_ = std::move(grown);
  n_rows_ = n_new;
}

void FeatureBinner::rebin_rows(const Matrix& x,
                               std::span<const std::size_t> changed) {
  NURD_CHECK(n_cols_ == x.cols(), "binner width must match the matrix");
  for (std::size_t f = 0; f < n_cols_; ++f) {
    const auto& edges = edges_[f];
    auto* out = bins_.data() + f * n_rows_;
    for (const auto r : changed) {
      NURD_CHECK(r < n_rows_, "rebin_rows row out of range");
      const auto it = std::lower_bound(edges.begin(), edges.end(), x(r, f));
      out[r] = static_cast<std::uint16_t>(it - edges.begin());
    }
  }
}

// Histogram-backend fit state. Histograms are flat aligned double arrays
// with kernel::kHistBinStride slots per bin — (G, H, count, pad), one AVX2
// vector each — accumulated and sibling-subtracted through the kernel
// dispatch layer. offset[f]*kHistBinStride locates feature f's bins.
struct RegressionTree::HistContext {
  const FeatureBinner& binner;
  std::span<const double> grad;
  std::span<const double> hess;
  const TreeParams& params;
  Rng& rng;
  std::vector<std::size_t> offset;  // per-feature bin offset; back() = total
};

std::int32_t RegressionTree::build_hist(HistContext& ctx,
                                        std::vector<std::size_t>& rows,
                                        int depth,
                                        AlignedVector<double>&& hist) {
  const auto& params = ctx.params;
  double g_total = 0.0, h_total = 0.0;
  kernel::ops().pair_sum_indexed(ctx.grad.data(), ctx.hess.data(),
                                 rows.data(), rows.size(), &g_total,
                                 &h_total);

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.is_leaf = true;
    leaf.value = -g_total / (h_total + params.lambda);
    leaf.depth = depth;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= params.max_depth || rows.size() < 2) return make_leaf();

  const FeatureBinner& binner = ctx.binner;
  const std::size_t d = binner.cols();
  const auto features = node_features(d, params, ctx.rng);

  if (hist.empty()) hist = compute_histogram(ctx, rows);

  const double parent_obj = leaf_objective(g_total, h_total, params.lambda);
  const double n_node = static_cast<double>(rows.size());
  SplitCandidate best;

  for (const auto f : features) {
    const std::size_t nb = binner.bin_count(f);
    if (nb < 2) continue;  // constant feature
    const double* bins = hist.data() + ctx.offset[f] * kernel::kHistBinStride;
    double g_left = 0.0, h_left = 0.0, n_left = 0.0;
    for (std::size_t b = 0; b + 1 < nb; ++b) {
      g_left += bins[b * kernel::kHistBinStride];
      h_left += bins[b * kernel::kHistBinStride + 1];
      n_left += bins[b * kernel::kHistBinStride + 2];
      if (n_left == 0.0) continue;        // empty prefix: same as no split
      if (n_left == n_node) break;        // empty suffix: no more candidates
      const double g_right = g_total - g_left;
      const double h_right = h_total - h_left;
      if (h_left < params.min_child_weight ||
          h_right < params.min_child_weight) {
        continue;
      }
      const double gain = parent_obj -
                          leaf_objective(g_left, h_left, params.lambda) -
                          leaf_objective(g_right, h_right, params.lambda);
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = f;
        best.threshold = binner.edge(f, b);
        best.bin = b;
      }
    }
  }

  if (best.gain <= params.gamma) return make_leaf();

  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (const auto r : rows) {
    (binner.bin(best.feature, r) <= best.bin ? left_rows : right_rows)
        .push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();

  // Reserve this node's slot before recursing so children land after it.
  Node node;
  node.is_leaf = false;
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.depth = depth;
  nodes_.push_back(node);
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);

  AlignedVector<double> left_hist, right_hist;
  if (depth + 1 < params.max_depth) {
    // Sibling subtraction: accumulate only the smaller child; the larger
    // child's histogram is parent − smaller, reusing the parent's storage.
    const bool left_small = left_rows.size() <= right_rows.size();
    auto& small_rows = left_small ? left_rows : right_rows;
    AlignedVector<double> small_hist = compute_histogram(ctx, small_rows);
    kernel::ops().hist_subtract(hist.data(), small_hist.data(), hist.size());
    if (left_small) {
      left_hist = std::move(small_hist);
      right_hist = std::move(hist);
    } else {
      right_hist = std::move(small_hist);
      left_hist = std::move(hist);
    }
  }
  hist.clear();
  hist.shrink_to_fit();

  const auto left = build_hist(ctx, left_rows, depth + 1,
                               std::move(left_hist));
  const auto right = build_hist(ctx, right_rows, depth + 1,
                                std::move(right_hist));
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

// Accumulates the (G, H, count) histogram of `rows` for every feature,
// fanning features out over the shared pool when the node is large. Each
// feature writes a disjoint range and accumulates in row order through the
// kernel layer, so the result is bit-identical for any pool size AND any
// backend (per-bin adds are serial in row order; see kernel.h).
AlignedVector<double> RegressionTree::compute_histogram(
    const HistContext& ctx, const std::vector<std::size_t>& rows) {
  const FeatureBinner& binner = ctx.binner;
  const std::size_t d = binner.cols();
  AlignedVector<double> hist(ctx.offset.back() * kernel::kHistBinStride, 0.0);

  const auto& kops = kernel::ops();
  const auto accumulate_feature = [&](std::size_t f) {
    double* bins = hist.data() + ctx.offset[f] * kernel::kHistBinStride;
    kops.hist_accumulate(bins, binner.bin_column(f), rows.data(), rows.size(),
                         ctx.grad.data(), ctx.hess.data());
  };

  if (rows.size() * d >= kParallelWorkCutoff) {
    ThreadPool::global().parallel_for(d, accumulate_feature);
  } else {
    for (std::size_t f = 0; f < d; ++f) accumulate_feature(f);
  }
  return hist;
}

void RegressionTree::fit(const Matrix& x, std::span<const double> grad,
                         std::span<const double> hess,
                         std::span<const std::size_t> rows,
                         const TreeParams& params, Rng& rng) {
  NURD_CHECK(grad.size() == x.rows() && hess.size() == x.rows(),
             "grad/hess length must match row count");
  NURD_CHECK(!rows.empty(), "cannot fit a tree on zero rows");
  if (histogram_enabled(params, rows.size())) {
    const FeatureBinner binner(x, rows, params.max_bins);
    fit(x, binner, grad, hess, rows, params, rng);
    return;
  }
  nodes_.clear();
  std::vector<std::size_t> work(rows.begin(), rows.end());
  build(x, grad, hess, work, 0, params, rng);
}

void RegressionTree::fit(const Matrix& x, const FeatureBinner& binner,
                         std::span<const double> grad,
                         std::span<const double> hess,
                         std::span<const std::size_t> rows,
                         const TreeParams& params, Rng& rng) {
  NURD_CHECK(grad.size() == x.rows() && hess.size() == x.rows(),
             "grad/hess length must match row count");
  NURD_CHECK(!rows.empty(), "cannot fit a tree on zero rows");
  NURD_CHECK(binner.rows() == x.rows() && binner.cols() == x.cols(),
             "binner shape must match the feature matrix");
  nodes_.clear();
  std::vector<std::size_t> work(rows.begin(), rows.end());

  HistContext ctx{binner, grad, hess, params, rng, {}};
  ctx.offset.resize(binner.cols() + 1, 0);
  for (std::size_t f = 0; f < binner.cols(); ++f) {
    ctx.offset[f + 1] = ctx.offset[f] + binner.bin_count(f);
  }
  build_hist(ctx, work, 0, {});
}

std::int32_t RegressionTree::build(const Matrix& x,
                                   std::span<const double> grad,
                                   std::span<const double> hess,
                                   std::vector<std::size_t>& rows, int depth,
                                   const TreeParams& params, Rng& rng) {
  double g_total = 0.0, h_total = 0.0;
  kernel::ops().pair_sum_indexed(grad.data(), hess.data(), rows.data(),
                                 rows.size(), &g_total, &h_total);

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.is_leaf = true;
    leaf.value = -g_total / (h_total + params.lambda);
    leaf.depth = depth;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= params.max_depth || rows.size() < 2) return make_leaf();

  const auto features = node_features(x.cols(), params, rng);
  const double parent_obj = leaf_objective(g_total, h_total, params.lambda);
  SplitCandidate best;

  std::vector<std::size_t> sorted = rows;
  for (std::size_t f : features) {
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](std::size_t a, std::size_t b) {
                       return x(a, f) < x(b, f);
                     });
    double g_left = 0.0, h_left = 0.0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      g_left += grad[sorted[i]];
      h_left += hess[sorted[i]];
      const double v = x(sorted[i], f);
      const double v_next = x(sorted[i + 1], f);
      if (v_next <= v) continue;  // can't split between equal values
      const double g_right = g_total - g_left;
      const double h_right = h_total - h_left;
      if (h_left < params.min_child_weight ||
          h_right < params.min_child_weight) {
        continue;
      }
      const double gain = parent_obj -
                          leaf_objective(g_left, h_left, params.lambda) -
                          leaf_objective(g_right, h_right, params.lambda);
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = f;
        best.threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best.gain <= params.gamma) return make_leaf();

  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (auto r : rows) {
    (x(r, best.feature) <= best.threshold ? left_rows : right_rows)
        .push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();

  // Reserve this node's slot before recursing so children land after it.
  Node node;
  node.is_leaf = false;
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.depth = depth;
  nodes_.push_back(node);
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const auto left = build(x, grad, hess, left_rows, depth + 1, params, rng);
  const auto right = build(x, grad, hess, right_rows, depth + 1, params, rng);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

double RegressionTree::predict(std::span<const double> row) const {
  if (nodes_.empty()) return 0.0;
  std::size_t i = 0;
  while (!nodes_[i].is_leaf) {
    const auto& n = nodes_[i];
    i = static_cast<std::size_t>(row[n.feature] <= n.threshold ? n.left
                                                               : n.right);
  }
  return nodes_[i].value;
}

std::size_t RegressionTree::leaf_count() const {
  std::size_t c = 0;
  for (const auto& n : nodes_) c += n.is_leaf ? 1 : 0;
  return c;
}

int RegressionTree::depth() const {
  int d = 0;
  for (const auto& n : nodes_) d = std::max(d, n.depth);
  return d;
}

}  // namespace nurd::ml
