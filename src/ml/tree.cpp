#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace nurd::ml {

namespace {

struct SplitCandidate {
  double gain = -std::numeric_limits<double>::infinity();
  std::size_t feature = 0;
  double threshold = 0.0;
};

double leaf_objective(double g, double h, double lambda) {
  return -0.5 * g * g / (h + lambda);
}

}  // namespace

void RegressionTree::fit(const Matrix& x, std::span<const double> grad,
                         std::span<const double> hess,
                         std::span<const std::size_t> rows,
                         const TreeParams& params, Rng& rng) {
  NURD_CHECK(grad.size() == x.rows() && hess.size() == x.rows(),
             "grad/hess length must match row count");
  NURD_CHECK(!rows.empty(), "cannot fit a tree on zero rows");
  nodes_.clear();
  std::vector<std::size_t> work(rows.begin(), rows.end());
  build(x, grad, hess, work, 0, params, rng);
}

std::int32_t RegressionTree::build(const Matrix& x,
                                   std::span<const double> grad,
                                   std::span<const double> hess,
                                   std::vector<std::size_t>& rows, int depth,
                                   const TreeParams& params, Rng& rng) {
  double g_total = 0.0, h_total = 0.0;
  for (auto r : rows) {
    g_total += grad[r];
    h_total += hess[r];
  }

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.is_leaf = true;
    leaf.value = -g_total / (h_total + params.lambda);
    leaf.depth = depth;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= params.max_depth || rows.size() < 2) return make_leaf();

  // Choose the feature subset for this node.
  const std::size_t d = x.cols();
  std::vector<std::size_t> features;
  if (params.colsample >= 1.0) {
    features.resize(d);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               params.colsample * static_cast<double>(d))));
    features = rng.sample_without_replacement(d, k);
  }

  const double parent_obj = leaf_objective(g_total, h_total, params.lambda);
  SplitCandidate best;

  std::vector<std::size_t> sorted = rows;
  for (std::size_t f : features) {
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](std::size_t a, std::size_t b) {
                       return x(a, f) < x(b, f);
                     });
    double g_left = 0.0, h_left = 0.0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      g_left += grad[sorted[i]];
      h_left += hess[sorted[i]];
      const double v = x(sorted[i], f);
      const double v_next = x(sorted[i + 1], f);
      if (v_next <= v) continue;  // can't split between equal values
      const double g_right = g_total - g_left;
      const double h_right = h_total - h_left;
      if (h_left < params.min_child_weight ||
          h_right < params.min_child_weight) {
        continue;
      }
      const double gain = parent_obj -
                          leaf_objective(g_left, h_left, params.lambda) -
                          leaf_objective(g_right, h_right, params.lambda);
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = f;
        best.threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best.gain <= params.gamma) return make_leaf();

  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (auto r : rows) {
    (x(r, best.feature) <= best.threshold ? left_rows : right_rows)
        .push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();

  // Reserve this node's slot before recursing so children land after it.
  Node node;
  node.is_leaf = false;
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.depth = depth;
  nodes_.push_back(node);
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const auto left = build(x, grad, hess, left_rows, depth + 1, params, rng);
  const auto right = build(x, grad, hess, right_rows, depth + 1, params, rng);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

double RegressionTree::predict(std::span<const double> row) const {
  if (nodes_.empty()) return 0.0;
  std::size_t i = 0;
  while (!nodes_[i].is_leaf) {
    const auto& n = nodes_[i];
    i = static_cast<std::size_t>(row[n.feature] <= n.threshold ? n.left
                                                               : n.right);
  }
  return nodes_[i].value;
}

std::size_t RegressionTree::leaf_count() const {
  std::size_t c = 0;
  for (const auto& n : nodes_) c += n.is_leaf ? 1 : 0;
  return c;
}

int RegressionTree::depth() const {
  int d = 0;
  for (const auto& n : nodes_) d = std::max(d, n.depth);
  return d;
}

}  // namespace nurd::ml
