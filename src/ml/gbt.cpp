#include "ml/gbt.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/check.h"

namespace nurd::ml {

GradientBoosting::GradientBoosting(std::unique_ptr<Loss> loss,
                                   GbtParams params)
    : loss_(std::move(loss)), params_(params) {
  NURD_CHECK(loss_ != nullptr, "loss must not be null");
  NURD_CHECK(params_.n_rounds > 0, "n_rounds must be positive");
  NURD_CHECK(params_.learning_rate > 0.0, "learning_rate must be positive");
}

GradientBoosting GradientBoosting::regressor(GbtParams params) {
  return {std::make_unique<SquaredLoss>(), params};
}

GradientBoosting GradientBoosting::classifier(GbtParams params) {
  return {std::make_unique<LogisticLoss>(), params};
}

GradientBoosting GradientBoosting::grabit(double sigma, GbtParams params) {
  return {std::make_unique<TobitLoss>(sigma), params};
}

void GradientBoosting::fit(const Matrix& x, std::span<const double> y) {
  std::vector<Target> targets(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) targets[i] = {y[i], false};
  fit(x, targets);
}

void GradientBoosting::fit(const Matrix& x, std::span<const Target> targets) {
  NURD_CHECK(x.rows() == targets.size(), "row/target count mismatch");
  NURD_CHECK(x.rows() > 0, "cannot fit on empty data");

  const std::size_t n = x.rows();
  trees_.clear();
  base_score_ = loss_->init_score(targets);

  std::vector<double> score(n, base_score_);
  std::vector<double> grad(n), hess(n);
  Rng rng(params_.seed);

  std::vector<std::size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});

  // Histogram backend: quantile-bin every feature ONCE per fit and share the
  // binner across all rounds — per-round row subsamples index into it, so no
  // tree ever re-sorts or re-bins.
  std::optional<FeatureBinner> binner;
  if (histogram_enabled(params_.tree, n)) {
    binner.emplace(x, all_rows, params_.tree.max_bins);
  }

  for (int round = 0; round < params_.n_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto gh = loss_->grad_hess(targets[i], score[i]);
      grad[i] = gh.grad;
      hess[i] = gh.hess;
    }

    std::vector<std::size_t> rows;
    if (params_.subsample >= 1.0) {
      rows = all_rows;
    } else {
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 params_.subsample * static_cast<double>(n)));
      rows = rng.sample_without_replacement(n, k);
    }

    RegressionTree tree;
    if (binner) {
      tree.fit(x, *binner, grad, hess, rows, params_.tree, rng);
    } else {
      tree.fit(x, grad, hess, rows, params_.tree, rng);
    }

    for (std::size_t i = 0; i < n; ++i) {
      score[i] += params_.learning_rate * tree.predict(x.row(i));
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double GradientBoosting::predict_raw(std::span<const double> row) const {
  NURD_CHECK(fitted_, "model not fitted");
  double s = base_score_;
  for (const auto& t : trees_) s += params_.learning_rate * t.predict(row);
  return s;
}

double GradientBoosting::predict(std::span<const double> row) const {
  return loss_->transform(predict_raw(row));
}

std::vector<double> GradientBoosting::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict(x.row(i));
  return out;
}

}  // namespace nurd::ml
