#include "ml/gbt.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/check.h"
#include "kernel/kernel.h"

namespace nurd::ml {

GradientBoosting::GradientBoosting(std::unique_ptr<Loss> loss,
                                   GbtParams params)
    : loss_(std::move(loss)), params_(params) {
  NURD_CHECK(loss_ != nullptr, "loss must not be null");
  NURD_CHECK(params_.n_rounds > 0, "n_rounds must be positive");
  NURD_CHECK(params_.learning_rate > 0.0, "learning_rate must be positive");
}

GradientBoosting GradientBoosting::regressor(GbtParams params) {
  return {std::make_unique<SquaredLoss>(), params};
}

GradientBoosting GradientBoosting::classifier(GbtParams params) {
  return {std::make_unique<LogisticLoss>(), params};
}

GradientBoosting GradientBoosting::grabit(double sigma, GbtParams params) {
  return {std::make_unique<TobitLoss>(sigma), params};
}

void GradientBoosting::set_loss(std::unique_ptr<Loss> loss) {
  NURD_CHECK(loss != nullptr, "loss must not be null");
  loss_ = std::move(loss);
}

void GradientBoosting::fit(const Matrix& x, std::span<const double> y) {
  std::vector<Target> targets(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) targets[i] = {y[i], false};
  fit(x, targets);
}

void GradientBoosting::fit(const Matrix& x, std::span<const Target> targets) {
  NURD_CHECK(x.rows() == targets.size(), "row/target count mismatch");
  NURD_CHECK(x.rows() > 0, "cannot fit on empty data");

  const std::size_t n = x.rows();
  trees_.clear();
  tree_rate_.clear();
  base_score_ = loss_->init_score(targets);

  std::vector<double> score(n, base_score_);
  Rng rng(params_.seed);

  // Histogram backend: quantile-bin every feature ONCE per fit and share the
  // binner across all rounds — per-round row subsamples index into it, so no
  // tree ever re-sorts or re-bins.
  std::optional<FeatureBinner> binner;
  if (histogram_enabled(params_.tree, n)) {
    std::vector<std::size_t> all_rows(n);
    std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});
    binner.emplace(x, all_rows, params_.tree.max_bins);
  }

  boost(x, targets, params_.n_rounds, params_.learning_rate, score,
        binner ? &*binner : nullptr, rng);
  fitted_ = true;

  if (params_.warm_start) {
    train_score_ = std::move(score);
    binner_ = std::move(binner);
    rng_ = rng;
    n_trained_ = n;
    n_full_fit_ = n;
  }
}

void GradientBoosting::continue_fit(
    const Matrix& x, std::span<const Target> targets, int rounds,
    std::span<const std::size_t> changed_rows,
    std::span<const std::size_t> inserted_rows) {
  NURD_CHECK(params_.warm_start,
             "continue_fit requires warm_start in the params");
  NURD_CHECK(fitted_, "continue_fit requires a prior fit");
  NURD_CHECK(x.rows() == targets.size(), "row/target count mismatch");
  NURD_CHECK(x.rows() >= n_trained_, "warm-start fits only grow");
  NURD_CHECK(inserted_rows.empty() ||
                 inserted_rows.size() == x.rows() - n_trained_,
             "inserted_rows must account for every new row");
  NURD_CHECK(rounds >= 0, "rounds must be non-negative");
  const std::size_t n = x.rows();
  // Validate the splice map BEFORE the remap loops below walk the old
  // buffers: an unsorted or duplicated position would otherwise overrun the
  // carried-over prefix first and only then hit a guard.
  for (std::size_t i = 0; i < inserted_rows.size(); ++i) {
    NURD_CHECK(inserted_rows[i] < n &&
                   (i == 0 || inserted_rows[i] > inserted_rows[i - 1]),
               "inserted_rows must be strictly ascending and in range");
  }

  // Refresh the cached training scores: inserted rows and caller-reported
  // changed rows pass through the ensemble once; every other row's cache is
  // carried (appends) or remapped (mid-block insertions) over. This is the
  // O(n + Δ·trees) step a from-scratch refit pays as O(n·rounds) instead.
  if (inserted_rows.empty()) {
    train_score_.resize(n);
    for (std::size_t r = n_trained_; r < n; ++r) {
      train_score_[r] = predict_raw(x.row(r));
    }
  } else {
    std::vector<double> remapped(n);
    std::size_t old_r = 0;
    std::size_t next = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (next < inserted_rows.size() && inserted_rows[next] == r) {
        remapped[r] = predict_raw(x.row(r));
        ++next;
      } else {
        remapped[r] = train_score_[old_r++];
      }
    }
    train_score_ = std::move(remapped);
  }
  for (const auto r : changed_rows) {
    NURD_CHECK(r < n, "changed row index out of range");
    train_score_[r] = predict_raw(x.row(r));
  }

  // The binner is built once, the first time the fit reaches histogram
  // scale, and its quantile edges are FROZEN from then on: later rows are
  // spliced in against the frozen sketch (clamping into boundary bins),
  // which is what makes per-checkpoint bin maintenance O(n·d) copy instead
  // of O(n·d·log n) re-sorting.
  if (histogram_enabled(params_.tree, n)) {
    if (!binner_) {
      std::vector<std::size_t> all_rows(n);
      std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});
      binner_.emplace(x, all_rows, params_.tree.max_bins);
    } else {
      if (inserted_rows.empty()) {
        binner_->append_rows(x);
      } else {
        binner_->insert_rows(x, inserted_rows);
      }
      binner_->rebin_rows(x, changed_rows);
    }
  }

  // Active-set continuation: a converged ensemble's gradient is concentrated
  // on the rows whose (features, target) pair actually moved — the inserted
  // and changed rows — so the continuation trees are fitted on that subset
  // (plus anchors, below) only. Each round then costs O(|active|·d) for
  // split finding plus O(n·depth) to keep every cached score current,
  // instead of the full fit's O(n·d): the round COUNT stays at the full
  // budget (residual absorption is multiplicative per round, (1−lr)^rounds,
  // and does not shrink with the delta), the round COST is what the delta
  // buys down. With nothing marked new or changed the subset is empty and
  // the rounds fall back to whole-block boosting (plain "more rounds"
  // continuation).
  std::vector<std::size_t> subset(inserted_rows.begin(), inserted_rows.end());
  subset.insert(subset.end(), changed_rows.begin(), changed_rows.end());

  // Anchors: a sample of settled rows (gradient ≈ 0), three per moved row,
  // joins the active set. Without them a tree fitted on moved rows alone
  // assigns every leaf the moved rows' correction, which BLEEDS onto all the
  // settled rows sharing those feature regions; with them the split gain
  // rewards isolating the moved rows first (their gradients differ from the
  // anchors'), pure-fresh leaves take the full Newton step, and mixed leaves
  // are damped by the anchors' Hessian mass.
  if (!subset.empty() && subset.size() < n) {
    const auto anchors =
        std::min(n - subset.size(), 3 * subset.size());
    const auto sampled = rng_.sample_without_replacement(n, anchors);
    subset.insert(subset.end(), sampled.begin(), sampled.end());
  }
  std::sort(subset.begin(), subset.end());
  subset.erase(std::unique(subset.begin(), subset.end()), subset.end());

  const double rate =
      std::min(0.5, params_.warm_rate_factor * params_.learning_rate);
  boost(x, targets, rounds, rate, train_score_,
        binner_ ? &*binner_ : nullptr, rng_, subset);
  n_trained_ = n;
}

void GradientBoosting::continue_fit(const Matrix& x, std::span<const double> y,
                                    int rounds,
                                    std::span<const std::size_t> changed_rows,
                                    std::span<const std::size_t> inserted_rows) {
  std::vector<Target> targets(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) targets[i] = {y[i], false};
  continue_fit(x, targets, rounds, changed_rows, inserted_rows);
}

void GradientBoosting::boost(const Matrix& x, std::span<const Target> targets,
                             int rounds, double rate,
                             std::vector<double>& score,
                             const FeatureBinner* binner, Rng& rng,
                             std::span<const std::size_t> subset) {
  const std::size_t n = x.rows();
  std::vector<double> grad(n), hess(n), pred(n);
  std::vector<std::size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});
  const bool active_set = !subset.empty();
  const auto& kops = kernel::ops();

  for (int round = 0; round < rounds; ++round) {
    if (active_set) {
      for (const auto i : subset) {
        const auto gh = loss_->grad_hess(targets[i], score[i]);
        grad[i] = gh.grad;
        hess[i] = gh.hess;
      }
    } else {
      // One virtual dispatch for the whole block; kernel-batched inside.
      loss_->grad_hess_batch(targets, score, grad, hess);
    }

    std::vector<std::size_t> rows;
    if (active_set) {
      rows.assign(subset.begin(), subset.end());
    } else if (params_.subsample >= 1.0) {
      rows = all_rows;
    } else {
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 params_.subsample * static_cast<double>(n)));
      rows = rng.sample_without_replacement(n, k);
    }

    RegressionTree tree;
    if (binner != nullptr) {
      tree.fit(x, *binner, grad, hess, rows, params_.tree, rng);
    } else {
      tree.fit(x, grad, hess, rows, params_.tree, rng);
    }

    for (std::size_t i = 0; i < n; ++i) pred[i] = tree.predict(x.row(i));
    kops.axpy(rate, pred.data(), score.data(), n);
    trees_.push_back(std::move(tree));
    tree_rate_.push_back(rate);
  }
}

double GradientBoosting::predict_raw(std::span<const double> row) const {
  NURD_CHECK(fitted_, "model not fitted");
  double s = base_score_;
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    s += tree_rate_[i] * trees_[i].predict(row);
  }
  return s;
}

double GradientBoosting::predict(std::span<const double> row) const {
  return loss_->transform(predict_raw(row));
}

std::vector<double> GradientBoosting::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict(x.row(i));
  return out;
}

}  // namespace nurd::ml
