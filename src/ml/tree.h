// Regression tree fit to per-sample (gradient, Hessian) pairs — the weak
// learner of the boosting engine. Split gain and leaf values follow the
// XGBoost formulation (Chen & Guestrin 2016):
//   leaf value  w* = −G / (H + λ)
//   split gain  ½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ
// Exact greedy splits over sorted feature values; no histogram binning is
// needed at this library's data scale (n ≲ 10⁴ per fit).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace nurd::ml {

/// Tree growth hyperparameters.
struct TreeParams {
  int max_depth = 3;
  double min_child_weight = 1.0;  ///< minimum Hessian sum per child
  double lambda = 1.0;            ///< L2 regularization on leaf values
  double gamma = 0.0;             ///< minimum gain to split
  double colsample = 1.0;         ///< fraction of features tried per node
};

/// A fitted regression tree. Nodes are stored in a flat array; leaves carry
/// the Newton-step value −G/(H+λ).
class RegressionTree {
 public:
  /// Grows a tree on the sample subset `rows` of `x`, using per-sample
  /// gradients and Hessians. `rng` drives column subsampling only.
  void fit(const Matrix& x, std::span<const double> grad,
           std::span<const double> hess, std::span<const std::size_t> rows,
           const TreeParams& params, Rng& rng);

  /// Leaf value for a single feature row.
  double predict(std::span<const double> row) const;

  /// Number of nodes (internal + leaves); 0 before fit.
  std::size_t node_count() const { return nodes_.size(); }

  /// Number of leaves.
  std::size_t leaf_count() const;

  /// Depth of the deepest leaf (root = depth 0); 0 for a stump/empty tree.
  int depth() const;

 private:
  struct Node {
    bool is_leaf = true;
    double value = 0.0;       // leaf value
    std::size_t feature = 0;  // split feature (internal nodes)
    double threshold = 0.0;   // go left if x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t depth = 0;
  };

  std::int32_t build(const Matrix& x, std::span<const double> grad,
                     std::span<const double> hess,
                     std::vector<std::size_t>& rows, int depth,
                     const TreeParams& params, Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace nurd::ml
