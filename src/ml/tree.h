// Regression tree fit to per-sample (gradient, Hessian) pairs — the weak
// learner of the boosting engine. Split gain and leaf values follow the
// XGBoost formulation (Chen & Guestrin 2016):
//   leaf value  w* = −G / (H + λ)
//   split gain  ½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ
//
// Two split-finding backends share that formulation:
//   * exact greedy — sorts the node's rows per feature and scans every
//     distinct-value boundary; O(d · n log n) per node, best for tiny fits;
//   * histogram (LightGBM-style) — quantile-bins each feature once per fit,
//     accumulates per-bin (G, H) sums per node, and scans bin boundaries;
//     O(d · n) per tree level, with the sibling-subtraction trick (child
//     histogram = parent − other child) halving construction cost. Per-
//     feature histogram builds fan out over the shared ThreadPool.
// Both backends are deterministic: identical inputs and Rng state produce a
// bit-identical tree regardless of thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/matrix.h"
#include "common/rng.h"

namespace nurd::ml {

/// Split-finding backend selection.
enum class SplitMethod {
  kAuto,       ///< histogram when the fit has ≥ exact_cutoff rows, else exact
  kExact,      ///< always exact greedy
  kHistogram,  ///< always histogram
};

/// Tree growth hyperparameters.
struct TreeParams {
  int max_depth = 3;
  double min_child_weight = 1.0;  ///< minimum Hessian sum per child
  double lambda = 1.0;            ///< L2 regularization on leaf values
  double gamma = 0.0;             ///< minimum gain to split
  double colsample = 1.0;         ///< fraction of features tried per node
  SplitMethod split = SplitMethod::kAuto;
  int max_bins = 64;              ///< histogram bins per feature (2..4096)
  std::size_t exact_cutoff = 256; ///< kAuto: rows below this use exact
};

/// True when `params` select the histogram backend for an `n_rows` fit.
bool histogram_enabled(const TreeParams& params, std::size_t n_rows);

/// Quantile-sketch feature binning, built once per boosting fit and shared
/// by every tree of the ensemble. Bin edges are placed at (deduplicated)
/// quantiles of the training rows — midpoints between adjacent distinct
/// values, so that with fewer distinct values than bins the candidate split
/// set is identical to exact greedy's. Every row of `x` is binned (not just
/// the edge-defining subset), so per-round row subsamples need no rebinning.
class FeatureBinner {
 public:
  FeatureBinner() = default;

  /// Computes per-feature bin edges from the `rows` subset of `x`, then bins
  /// all rows of `x`. `max_bins` must be in [2, 4096].
  FeatureBinner(const Matrix& x, std::span<const std::size_t> rows,
                int max_bins);

  /// Bins the rows `x` gained since this binner last saw it (x.rows() may
  /// equal rows(), a no-op) using the FROZEN edges — no re-sorting, no edge
  /// recomputation. Rows [0, rows()) of `x` must be the rows previously
  /// binned (warm-start fits append finished tasks, they never reorder).
  /// Values outside the frozen edge range clamp into the boundary bins,
  /// exactly as query-time binning always has.
  void append_rows(const Matrix& x);

  /// append_rows' general form: the previously binned rows appear in `x` in
  /// their old relative order but with NEW rows spliced in at the (sorted,
  /// ascending) positions `inserted`. Old rows' bins are remapped in one
  /// pass; only the inserted rows meet the frozen edges. This is how a
  /// warm-start fit follows an id-ordered training block, where a freshly
  /// finished task lands mid-block rather than at the end.
  void insert_rows(const Matrix& x, std::span<const std::size_t> inserted);

  /// Re-bins the listed (already covered) rows against the frozen edges —
  /// the drifting-running-task path: a warm-start fit over a snapshot
  /// refreshes only the rows the trace delta reports as changed.
  void rebin_rows(const Matrix& x, std::span<const std::size_t> changed);

  std::size_t rows() const { return n_rows_; }
  std::size_t cols() const { return n_cols_; }

  /// Number of bins for feature `f` (1 for a constant feature).
  std::size_t bin_count(std::size_t f) const { return edges_[f].size() + 1; }

  /// Bin index of row `r` for feature `f`.
  std::uint16_t bin(std::size_t f, std::size_t r) const {
    return bins_[f * n_rows_ + r];
  }

  /// Feature `f`'s contiguous per-row bin slice (length rows()) — what the
  /// kernel layer's hist_accumulate primitive consumes.
  const std::uint16_t* bin_column(std::size_t f) const {
    return bins_.data() + f * n_rows_;
  }

  /// Split threshold after bin `b`: x ≤ edge(f, b) ⟺ bin(f, x) ≤ b.
  double edge(std::size_t f, std::size_t b) const { return edges_[f][b]; }

 private:
  std::size_t n_rows_ = 0;
  std::size_t n_cols_ = 0;
  std::vector<std::vector<double>> edges_;  ///< ascending, per feature
  std::vector<std::uint16_t> bins_;         ///< column-major [f·rows + r]
};

/// A fitted regression tree. Nodes are stored in a flat array; leaves carry
/// the Newton-step value −G/(H+λ).
class RegressionTree {
 public:
  /// Grows a tree on the sample subset `rows` of `x`, using per-sample
  /// gradients and Hessians. `rng` drives column subsampling only. The
  /// backend follows `params.split`; histogram mode bins internally.
  void fit(const Matrix& x, std::span<const double> grad,
           std::span<const double> hess, std::span<const std::size_t> rows,
           const TreeParams& params, Rng& rng);

  /// Histogram-backend fit reusing a binner built once per boosting fit.
  /// `binner` must cover all rows of `x`.
  void fit(const Matrix& x, const FeatureBinner& binner,
           std::span<const double> grad, std::span<const double> hess,
           std::span<const std::size_t> rows, const TreeParams& params,
           Rng& rng);

  /// Leaf value for a single feature row.
  double predict(std::span<const double> row) const;

  /// Number of nodes (internal + leaves); 0 before fit.
  std::size_t node_count() const { return nodes_.size(); }

  /// Number of leaves.
  std::size_t leaf_count() const;

  /// Depth of the deepest leaf (root = depth 0); 0 for a stump/empty tree.
  int depth() const;

 private:
  struct Node {
    bool is_leaf = true;
    double value = 0.0;       // leaf value
    std::size_t feature = 0;  // split feature (internal nodes)
    double threshold = 0.0;   // go left if x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t depth = 0;
  };

  struct HistContext;  // histogram-backend fit state (tree.cpp)

  std::int32_t build(const Matrix& x, std::span<const double> grad,
                     std::span<const double> hess,
                     std::vector<std::size_t>& rows, int depth,
                     const TreeParams& params, Rng& rng);

  std::int32_t build_hist(HistContext& ctx, std::vector<std::size_t>& rows,
                          int depth, AlignedVector<double>&& hist);

  static AlignedVector<double> compute_histogram(
      const HistContext& ctx, const std::vector<std::size_t>& rows);

  std::vector<Node> nodes_;
};

}  // namespace nurd::ml
