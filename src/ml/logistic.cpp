#include "ml/logistic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/linalg.h"
#include "common/stats.h"

namespace nurd::ml {

LogisticRegression::LogisticRegression(LogisticParams params)
    : params_(params) {
  NURD_CHECK(params_.l2 >= 0.0, "l2 must be non-negative");
}

void LogisticRegression::fit(const Matrix& x, std::span<const double> y,
                             std::span<const double> sample_weight) {
  NURD_CHECK(x.rows() == y.size(), "row/label count mismatch");
  NURD_CHECK(x.rows() > 0, "cannot fit on empty data");
  NURD_CHECK(sample_weight.empty() || sample_weight.size() == y.size(),
             "sample weight length mismatch");

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const Matrix xs = scaler_.fit_transform(x);

  // Parameter vector θ = [w; b], dimension d+1 (bias last, unpenalized).
  const std::size_t p = d + 1;
  std::vector<double> theta(p, 0.0);

  auto weight_of = [&](std::size_t i) {
    return sample_weight.empty() ? 1.0 : sample_weight[i];
  };

  for (int it = 0; it < params_.max_iterations; ++it) {
    // Gradient and Hessian of the penalized negative log-likelihood.
    std::vector<double> grad(p, 0.0);
    Matrix hess(p, p, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      auto row = xs.row(i);
      double z = theta[d];
      for (std::size_t j = 0; j < d; ++j) z += theta[j] * row[j];
      const double mu = sigmoid(z);
      const double sw = weight_of(i);
      const double r = sw * (mu - y[i]);
      const double v = std::max(sw * mu * (1.0 - mu), 1e-10);
      for (std::size_t j = 0; j < d; ++j) {
        grad[j] += r * row[j];
        for (std::size_t k = j; k < d; ++k) hess(j, k) += v * row[j] * row[k];
        hess(j, d) += v * row[j];
      }
      grad[d] += r;
      hess(d, d) += v;
    }
    for (std::size_t j = 0; j < d; ++j) {
      grad[j] += params_.l2 * theta[j];
      hess(j, j) += params_.l2;
    }
    // Small ridge on the full Hessian keeps Cholesky well-posed even for
    // separable data.
    for (std::size_t j = 0; j < p; ++j) hess(j, j) += 1e-8;
    for (std::size_t j = 0; j < p; ++j)
      for (std::size_t k = j + 1; k < p; ++k) hess(k, j) = hess(j, k);

    auto l = cholesky(hess);
    if (!l) break;  // numerically degenerate; keep current estimate
    const auto step = cholesky_solve(*l, grad);
    double max_step = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      theta[j] -= step[j];
      max_step = std::max(max_step, std::abs(step[j]));
    }
    if (max_step < params_.tolerance) break;
  }

  w_.assign(theta.begin(), theta.begin() + static_cast<std::ptrdiff_t>(d));
  b_ = theta[d];
  fitted_ = true;
}

double LogisticRegression::decision(std::span<const double> row) const {
  NURD_CHECK(fitted_, "model not fitted");
  std::vector<double> r(row.begin(), row.end());
  scaler_.transform_row(r);
  double z = b_;
  for (std::size_t j = 0; j < w_.size(); ++j) z += w_[j] * r[j];
  return z;
}

double LogisticRegression::predict_proba(std::span<const double> row) const {
  return sigmoid(decision(row));
}

std::vector<double> LogisticRegression::predict_proba(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict_proba(x.row(i));
  return out;
}

}  // namespace nurd::ml
