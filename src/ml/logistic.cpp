#include "ml/logistic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/linalg.h"
#include "common/stats.h"
#include "kernel/kernel.h"

namespace nurd::ml {

namespace {

/// Penalized negative log-likelihood at θ = [w; b] (bias unpenalized), the
/// merit function of the warm path's damped Newton. log(1+eᶻ) is evaluated
/// in its overflow-safe form. The decision values go through kernel::dot
/// (reference backend: the seed's exact accumulation order).
double penalized_nll(const Matrix& xs, std::span<const double> y,
                     std::span<const double> sample_weight, double l2,
                     std::span<const double> theta) {
  const std::size_t d = xs.cols();
  const auto& kops = kernel::ops();
  double nll = 0.0;
  for (std::size_t i = 0; i < xs.rows(); ++i) {
    const double z = kops.dot(theta[d], theta.data(), xs.row(i).data(), d);
    const double log1pexp = std::max(z, 0.0) + std::log1p(std::exp(-std::abs(z)));
    const double sw = sample_weight.empty() ? 1.0 : sample_weight[i];
    nll += sw * (log1pexp - y[i] * z);
  }
  for (std::size_t j = 0; j < d; ++j) nll += 0.5 * l2 * theta[j] * theta[j];
  return nll;
}

}  // namespace

LogisticRegression::LogisticRegression(LogisticParams params)
    : params_(params) {
  NURD_CHECK(params_.l2 >= 0.0, "l2 must be non-negative");
}

void LogisticRegression::fit(const Matrix& x, std::span<const double> y,
                             std::span<const double> sample_weight) {
  NURD_CHECK(x.rows() == y.size(), "row/label count mismatch");
  NURD_CHECK(x.rows() > 0, "cannot fit on empty data");
  NURD_CHECK(sample_weight.empty() || sample_weight.size() == y.size(),
             "sample weight length mismatch");

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  // Warm start: re-express the previous solution in raw-feature space BEFORE
  // the scaler is refitted, then map it into the new standardization below.
  // z = b + Σ wⱼ(xⱼ−μⱼ)/σⱼ = (b − Σ wⱼμⱼ/σⱼ) + Σ (wⱼ/σⱼ)xⱼ.
  const bool warm = params_.warm_start && fitted_ && w_.size() == d;
  std::vector<double> w_raw(d, 0.0);
  double b_raw = 0.0;
  if (warm) {
    const auto& mu = scaler_.mean();
    const auto& sd = scaler_.scale();
    b_raw = b_;
    for (std::size_t j = 0; j < d; ++j) {
      w_raw[j] = w_[j] / sd[j];
      b_raw -= w_[j] * mu[j] / sd[j];
    }
  }

  const Matrix xs = scaler_.fit_transform(x);

  // Parameter vector θ = [w; b], dimension d+1 (bias last, unpenalized).
  const std::size_t p = d + 1;
  std::vector<double> theta(p, 0.0);
  if (warm) {
    const auto& mu = scaler_.mean();
    const auto& sd = scaler_.scale();
    theta[d] = b_raw;
    for (std::size_t j = 0; j < d; ++j) {
      theta[j] = w_raw[j] * sd[j];
      theta[d] += w_raw[j] * mu[j];
    }
    // Safeguard: a previous optimum can sit in a saturated region of the NEW
    // data (σ(z) pinned at 0/1 ⇒ a floor-ridden Hessian), where undamped
    // Newton stalls instead of converging. Only keep the warm point if it
    // actually beats the cold start on the new objective.
    const std::vector<double> zero(p, 0.0);
    if (penalized_nll(xs, y, sample_weight, params_.l2, theta) >
        penalized_nll(xs, y, sample_weight, params_.l2, zero)) {
      std::fill(theta.begin(), theta.end(), 0.0);
    }
  }

  auto weight_of = [&](std::size_t i) {
    return sample_weight.empty() ? 1.0 : sample_weight[i];
  };

  const auto& kops = kernel::ops();
  std::vector<double> z(n), mu(n);
  for (int it = 0; it < params_.max_iterations; ++it) {
    // Gradient and Hessian of the penalized negative log-likelihood. The
    // X·θ product, the per-sample sigmoids, the Xᵀ·r accumulation (axpy) and
    // the upper-triangular Xᵀ·diag(v)·X rank-1 updates (syrk-lite) all
    // dispatch through the kernel layer; per-accumulator addition order
    // matches the seed's scalar loops, so the reference backend reproduces
    // the pre-kernel solver bit-for-bit.
    std::vector<double> grad(p, 0.0);
    Matrix hess(p, p, 0.0);
    kops.gemv(xs.flat().data(), n, d, theta.data(), theta[d], z.data());
    kops.sigmoid(z.data(), mu.data(), n);
    double* hess_data = hess.row(0).data();
    for (std::size_t i = 0; i < n; ++i) {
      auto row = xs.row(i);
      const double sw = weight_of(i);
      const double r = sw * (mu[i] - y[i]);
      const double v = std::max(sw * mu[i] * (1.0 - mu[i]), 1e-10);
      kops.axpy(r, row.data(), grad.data(), d);
      kops.syrk_rank1_upper(hess_data, p, row.data(), d, v);
      // Bias border column: hess(j, d) is p-strided, kept scalar.
      for (std::size_t j = 0; j < d; ++j) hess(j, d) += v * row[j];
      grad[d] += r;
      hess(d, d) += v;
    }
    for (std::size_t j = 0; j < d; ++j) {
      grad[j] += params_.l2 * theta[j];
      hess(j, j) += params_.l2;
    }
    // Small ridge on the full Hessian keeps Cholesky well-posed even for
    // separable data.
    for (std::size_t j = 0; j < p; ++j) hess(j, j) += 1e-8;
    for (std::size_t j = 0; j < p; ++j)
      for (std::size_t k = j + 1; k < p; ++k) hess(k, j) = hess(j, k);

    auto l = cholesky(hess);
    if (!l) break;  // numerically degenerate; keep current estimate
    const auto step = cholesky_solve(*l, grad);
    double max_step = 0.0;
    if (!params_.warm_start) {
      // Reference path: the undamped Newton step, bit-identical to the seed.
      for (std::size_t j = 0; j < p; ++j) {
        theta[j] -= step[j];
        max_step = std::max(max_step, std::abs(step[j]));
      }
    } else {
      // Damped path: a warm start may iterate through saturated regions
      // where the full Newton step overshoots — backtrack until the
      // objective stops getting worse. If NO halving yields a non-worsening
      // step (the regularized direction is not a descent direction at all),
      // keep the current estimate rather than committing a worsening one;
      // max_step stays 0 and the solve stops here.
      const double obj =
          penalized_nll(xs, y, sample_weight, params_.l2, theta);
      double scale = 1.0;
      bool accepted = false;
      std::vector<double> trial(p);
      for (int halving = 0; halving < 8; ++halving) {
        for (std::size_t j = 0; j < p; ++j) {
          trial[j] = theta[j] - scale * step[j];
        }
        if (penalized_nll(xs, y, sample_weight, params_.l2, trial) <= obj) {
          accepted = true;
          break;
        }
        scale *= 0.5;
      }
      if (accepted) {
        for (std::size_t j = 0; j < p; ++j) {
          max_step = std::max(max_step, std::abs(theta[j] - trial[j]));
          theta[j] = trial[j];
        }
      }
    }
    if (max_step < params_.tolerance) break;
  }

  w_.assign(theta.begin(), theta.begin() + static_cast<std::ptrdiff_t>(d));
  b_ = theta[d];
  fitted_ = true;
}

double LogisticRegression::decision(std::span<const double> row) const {
  NURD_CHECK(fitted_, "model not fitted");
  std::vector<double> r(row.begin(), row.end());
  scaler_.transform_row(r);
  return kernel::ops().dot(b_, w_.data(), r.data(), w_.size());
}

double LogisticRegression::predict_proba(std::span<const double> row) const {
  return sigmoid(decision(row));
}

std::vector<double> LogisticRegression::predict_proba(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict_proba(x.row(i));
  return out;
}

}  // namespace nurd::ml
