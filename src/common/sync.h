// Capability-annotated synchronization primitives: the repo-wide replacements
// for bare std::mutex / std::condition_variable, carrying Clang Thread Safety
// Analysis annotations so lock discipline is PROVEN at compile time (the
// `-Wthread-safety -Werror` CI leg) instead of sampled at runtime by TSan.
// On GCC (and any compiler without the capability attributes) every
// annotation macro expands to nothing and the wrappers compile down to the
// std primitives they hold — zero overhead, zero behavior change.
//
// Usage pattern (see common/thread_pool.cpp for the canonical example):
//
//   Mutex mutex_;
//   CondVar cv_;
//   std::deque<Task> queue_ NURD_GUARDED_BY(mutex_);
//   bool stop_ NURD_GUARDED_BY(mutex_) = false;
//
//   void wait_for_work() {
//     MutexLock lock(mutex_);
//     while (!stop_ && queue_.empty()) cv_.wait(mutex_);   // NOT a lambda
//     ...
//   }
//
// Conventions that keep the analysis exact:
//   * condition-variable predicates are written as explicit `while (!pred)
//     cv_.wait(mutex_);` loops, never wait(lock, lambda) — a lambda body is
//     analyzed as a separate function and loses the caller's lock set;
//   * helpers that are only called with a lock held are annotated
//     NURD_REQUIRES(mutex_) (the `_locked` suffix convention becomes a
//     compiler-checked contract);
//   * a lambda that provably runs under a lock the analysis cannot see
//     through (e.g. called back from a std::function) begins with
//     `mutex_.assert_held()` — an NURD_ASSERT_CAPABILITY no-op that injects
//     the fact, with the justification in a comment at the call site.
//
// ---------------------------------------------------------------------------
// LOCK ORDERING ACROSS THE CONCURRENT LAYERS (pool → DAG → engine → fleet)
// ---------------------------------------------------------------------------
// Every lock in src/ is LEAF-SCOPED by design: no layer calls into another
// layer while holding its own lock, because all cross-layer transfer happens
// through callbacks invoked AFTER the lock is released.
//
// This table is the authoritative inventory: every `Mutex` declared under
// src/ has a `[mutex] <path-under-src>::<field>` entry here, and
// scripts/nurd_lint.py fails the build when a declaration and the table
// drift apart (missing entry OR stale entry).
//
//   [mutex] common/thread_pool.h::mutex_
//       ThreadPool. Leaf. Workers pop a task under the lock and run it
//       unlocked; submit()/parallel_for() enqueue under the lock and notify
//       after (or outside) it.
//   [mutex] common/thread_pool.cpp::mutex
//       ThreadPool LoopState. Leaf. Per-parallel_for completion/error
//       channel; only ever held around error recording and the completion
//       notify/wait.
//   [mutex] core/task_dag.cpp::mutex_
//       core::TaskDag (Impl). Leaf. Graph bookkeeping only. The stage
//       runner, on_retire and on_error callbacks all run with the registry
//       lock RELEASED; pump loops hold it only between tasks.
//   [mutex] serve/shard_engine.cpp::mutex_
//       serve::ShardEngine (Impl) — the execution core one StreamMonitor
//       shard runs on. Leaf. The FlagSink is deliberately invoked from the
//       Flag stage BEFORE the event retires and OUTSIDE this lock, so a
//       sink may call back into low_watermark() (which takes it) freely;
//       the retired/wait_handoff hooks likewise run unlocked.
//   [mutex] serve/cluster_sink.h::mutex_
//       serve::LiveClusterFeed. The ONE nested acquisition in the codebase:
//       sink()/finish() hold it while calling
//       StreamMonitor::low_watermark(), i.e. LiveClusterFeed::mutex_ →
//       ShardEngine::mutex_ in that order, never the reverse (no engine
//       holds its mutex while invoking the sink).
//   [mutex] serve/shard_pool.cpp::mutex_
//       serve::ShardedMonitor (Impl). Leaf. Guards the cross-shard handoff
//       ledger (retired_through_) and first-error capture. Taken only from
//       engine hooks (note_retired / wait_handoff), which ShardEngine
//       invokes with its own lock RELEASED; the fleet never calls into an
//       engine while holding it. Nests with nothing — a handoff wait
//       sleeps on this mutex's condvar alone, and the drain plan
//       guarantees the wake (handoffs only leave drained shards; drained
//       shards never reopen, so waits cannot form a cycle).
//
// sched::ClusterEngine has no lock of its own: live engines are guarded by
// their owner (LiveClusterFeed::mutex_).
//
// A thread therefore holds at most two locks at once (feed → engine), and
// the pool → DAG → engine → fleet layering can never deadlock: moving DOWN
// the layering (worker runs pump, pump runs stage, stage emits to sink) is
// always done lock-free, and the single UP edge (sink querying the monitor)
// acquires in a fixed order. Any new nesting must be recorded here — the
// thread-safety CI leg plus this table is the contract TSan spot-checks.
#pragma once

#include <condition_variable>
#include <mutex>

// ---- annotation macros -----------------------------------------------------
// GNU-style spellings of the Clang thread-safety attributes, compiled away
// everywhere else. __has_attribute keeps ancient clangs working.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NURD_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef NURD_THREAD_ANNOTATION__
#define NURD_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a capability (a lock).
#define NURD_CAPABILITY(name) NURD_THREAD_ANNOTATION__(capability(name))
/// Declares an RAII type that acquires on construction / releases on
/// destruction.
#define NURD_SCOPED_CAPABILITY NURD_THREAD_ANNOTATION__(scoped_lockable)
/// Field is protected by the given mutex.
#define NURD_GUARDED_BY(x) NURD_THREAD_ANNOTATION__(guarded_by(x))
/// Pointee is protected by the given mutex (the pointer itself is not).
#define NURD_PT_GUARDED_BY(x) NURD_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function acquires the capability (and does not release it).
#define NURD_ACQUIRE(...) \
  NURD_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
/// Function releases the capability.
#define NURD_RELEASE(...) \
  NURD_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
/// Function may only be called with the capability held.
#define NURD_REQUIRES(...) \
  NURD_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
/// Function may only be called with the capability NOT held.
#define NURD_EXCLUDES(...) NURD_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define NURD_TRY_ACQUIRE(...) \
  NURD_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
/// Asserts (as a no-op) that the capability is held — the documented escape
/// hatch for facts the analysis cannot derive, e.g. inside a std::function
/// callback that its caller contractually invokes under the lock. Every use
/// carries a comment saying WHY the lock is provably held.
#define NURD_ASSERT_CAPABILITY(x) \
  NURD_THREAD_ANNOTATION__(assert_capability(x))
/// Function returns a reference to the given capability.
#define NURD_RETURN_CAPABILITY(x) NURD_THREAD_ANNOTATION__(lock_returned(x))
/// Opts a function out of the analysis entirely. Last resort; prefer
/// NURD_ASSERT_CAPABILITY, which keeps the rest of the body checked.
#define NURD_NO_THREAD_SAFETY_ANALYSIS \
  NURD_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace nurd {

/// std::mutex with the capability annotation. Same size, same codegen; the
/// native handle is exposed only to CondVar.
class NURD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NURD_ACQUIRE() { m_.lock(); }
  void unlock() NURD_RELEASE() { m_.unlock(); }
  bool try_lock() NURD_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// No-op that tells the analysis this mutex is held here. See the macro
  /// doc: used where the lock provably is held but the proof crosses a
  /// std::function boundary the analysis cannot follow.
  void assert_held() const NURD_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Scoped lock (std::lock_guard/std::unique_lock replacement) with
/// scoped-capability annotations. Supports early unlock() and re-lock() for
/// pump-loop patterns (hold between tasks, release around the task body).
class NURD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NURD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NURD_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (the destructor then does nothing).
  void unlock() NURD_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  /// Re-acquires after an early unlock().
  void lock() NURD_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// std::condition_variable bound to Mutex. wait() takes the Mutex itself
/// (the caller's MutexLock stays in scope and keeps ownership); predicates
/// are explicit `while` loops at the call site so guarded reads stay inside
/// the caller's analyzed lock set.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; re-acquires before returning.
  /// Caller must hold `mu` (compiler-enforced) and re-check its predicate in
  /// a loop — spurious wakeups are allowed, exactly as with the std type.
  void wait(Mutex& mu) NURD_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nurd
