// Dense row-major matrix of doubles — the feature-matrix currency of the
// whole library. Deliberately minimal: the library's algorithms only need
// row access, column access, and a handful of reductions.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <span>
#include <vector>

#include "common/aligned.h"

namespace nurd {

/// Read-only strided view of one matrix column. Unlike Matrix::col it does
/// not copy: indexing strides through the row-major storage. Valid only
/// while the owning Matrix is alive and un-resized.
class ColView {
 public:
  ColView() = default;
  ColView(const double* base, std::size_t size, std::size_t stride)
      : base_(base), size_(size), stride_(stride) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double operator[](std::size_t i) const { return base_[i * stride_]; }

  /// Random-access iterator so ColView works with std:: algorithms. The
  /// elements are lvalues in the owning Matrix, so reference is a genuine
  /// const double& (required of a conforming forward iterator).
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = double;
    using difference_type = std::ptrdiff_t;
    using pointer = const double*;
    using reference = const double&;

    iterator() = default;
    iterator(const double* p, std::size_t stride) : p_(p), stride_(stride) {}

    reference operator*() const { return *p_; }
    reference operator[](difference_type n) const {
      return p_[n * static_cast<difference_type>(stride_)];
    }
    iterator& operator++() { p_ += stride_; return *this; }
    iterator operator++(int) { auto t = *this; ++*this; return t; }
    iterator& operator--() { p_ -= stride_; return *this; }
    iterator operator--(int) { auto t = *this; --*this; return t; }
    iterator& operator+=(difference_type n) {
      p_ += n * static_cast<difference_type>(stride_);
      return *this;
    }
    iterator& operator-=(difference_type n) { return *this += -n; }
    friend iterator operator+(iterator it, difference_type n) {
      return it += n;
    }
    friend iterator operator+(difference_type n, iterator it) {
      return it += n;
    }
    friend iterator operator-(iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return (a.p_ - b.p_) / static_cast<difference_type>(a.stride_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.p_ == b.p_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) {
      return a.p_ <=> b.p_;
    }

   private:
    const double* p_ = nullptr;
    std::size_t stride_ = 1;
  };

  iterator begin() const { return {base_, stride_}; }
  iterator end() const { return {base_ + size_ * stride_, stride_}; }

 private:
  const double* base_ = nullptr;
  std::size_t size_ = 0;
  std::size_t stride_ = 1;
};

/// Dense row-major matrix of doubles. Rows are samples, columns features.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows×cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a matrix from nested initializer lists (row-major).
  /// All rows must have the same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a matrix from a flat row-major buffer. `flat.size()` must equal
  /// rows*cols. The values are copied into the matrix's aligned storage.
  static Matrix from_flat(std::size_t rows, std::size_t cols,
                          std::vector<double> flat);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Mutable view of row `r` (length cols()).
  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  /// Read-only view of row `r` (length cols()).
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies column `c` into a new vector (length rows()).
  std::vector<double> col(std::size_t c) const;

  /// Zero-copy strided view of column `c` (length rows()). Invalidated by
  /// push_row and any other resizing operation.
  ColView col_view(std::size_t c) const;

  /// Appends a row. `values.size()` must equal cols() (or the matrix must be
  /// empty, in which case cols() is set from the first row).
  void push_row(std::span<const double> values);

  /// Reserves capacity for `n` rows of upcoming push_row calls. On a matrix
  /// whose width is not yet known the hint is remembered and applied when
  /// the first row fixes cols().
  void reserve_rows(std::size_t n);

  /// Empties the matrix to 0×`cols` while KEEPING the allocated capacity —
  /// the scratch-buffer idiom: gather loops that run once per checkpoint
  /// reset and refill the same matrix instead of allocating a fresh one.
  void reset(std::size_t cols);

  /// Returns a new matrix containing the rows listed in `indices`, in order.
  Matrix select_rows(std::span<const std::size_t> indices) const;

  /// Column means; empty matrix yields an all-zero vector of length cols().
  std::vector<double> col_means() const;

  /// Column standard deviations (population, i.e. divide by n); zero-variance
  /// columns yield 0.
  std::vector<double> col_stddevs() const;

  /// Flat row-major storage (read-only).
  std::span<const double> flat() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_reserve_hint_ = 0;
  // 32-byte aligned so SIMD kernel backends get aligned row/column loads.
  // reserve_rows/reset keep their capacity-preserving semantics unchanged —
  // the allocator only changes WHERE the buffer lands, never when it is
  // (re)allocated.
  AlignedVector<double> data_;
};

/// Squared Euclidean distance between two equal-length vectors. Dispatches
/// through the kernel layer (kernel/kernel.h): bit-exact under the reference
/// backend, tolerance-bound under accelerated ones.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between two equal-length vectors.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

/// Dot product of two equal-length vectors.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm of a vector.
double norm2(std::span<const double> a);

}  // namespace nurd
