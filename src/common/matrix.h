// Dense row-major matrix of doubles — the feature-matrix currency of the
// whole library. Deliberately minimal: the library's algorithms only need
// row access, column access, and a handful of reductions.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace nurd {

/// Dense row-major matrix of doubles. Rows are samples, columns features.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows×cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a matrix from nested initializer lists (row-major).
  /// All rows must have the same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a matrix from a flat row-major buffer. `flat.size()` must equal
  /// rows*cols.
  static Matrix from_flat(std::size_t rows, std::size_t cols,
                          std::vector<double> flat);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Mutable view of row `r` (length cols()).
  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  /// Read-only view of row `r` (length cols()).
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies column `c` into a new vector (length rows()).
  std::vector<double> col(std::size_t c) const;

  /// Appends a row. `values.size()` must equal cols() (or the matrix must be
  /// empty, in which case cols() is set from the first row).
  void push_row(std::span<const double> values);

  /// Returns a new matrix containing the rows listed in `indices`, in order.
  Matrix select_rows(std::span<const std::size_t> indices) const;

  /// Column means; empty matrix yields an all-zero vector of length cols().
  std::vector<double> col_means() const;

  /// Column standard deviations (population, i.e. divide by n); zero-variance
  /// columns yield 0.
  std::vector<double> col_stddevs() const;

  /// Flat row-major storage (read-only).
  std::span<const double> flat() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Squared Euclidean distance between two equal-length vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between two equal-length vectors.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

/// Dot product of two equal-length vectors.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm of a vector.
double norm2(std::span<const double> a);

}  // namespace nurd
