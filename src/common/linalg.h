// Small dense linear algebra for the feature dimensionalities this library
// sees (d = 4 for Alibaba-like traces, d = 15 for Google-like). Cholesky
// factorization backs the Mahalanobis distances in the MCD detector; Jacobi
// eigendecomposition backs the PCA detector. None of this is tuned for large
// d — it does not need to be.
#pragma once

#include <optional>
#include <vector>

#include "common/matrix.h"

namespace nurd {

/// Result of a symmetric eigendecomposition: eigenvalues in descending order
/// with matching eigenvectors (each eigenvector is a row of `vectors`).
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;  // vectors.row(i) is the eigenvector for values[i]
};

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
/// Returns std::nullopt if A is not (numerically) positive definite.
std::optional<Matrix> cholesky(const Matrix& a);

/// Solves A·x = b using a precomputed Cholesky factor L (forward + back
/// substitution). `b.size()` must equal L.rows().
std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b);

/// Inverse of a symmetric positive-definite matrix via Cholesky. Returns
/// std::nullopt if the matrix is not positive definite.
std::optional<Matrix> spd_inverse(const Matrix& a);

/// log-determinant of an SPD matrix from its Cholesky factor L:
/// log det A = 2·Σ log L(i,i).
double cholesky_logdet(const Matrix& l);

/// Jacobi eigendecomposition of a symmetric matrix. Deterministic, O(d³ per
/// sweep); fine for d ≲ 50. Eigenvalues returned in descending order.
EigenResult jacobi_eigen(const Matrix& a, int max_sweeps = 100);

/// Sample covariance matrix (divide by n-1) of the rows of X; if n < 2,
/// returns the zero matrix.
Matrix covariance(const Matrix& x);

/// Mahalanobis squared distance of `v` from `mean` under precision matrix
/// `precision` (the inverse covariance): (v−μ)ᵀ P (v−μ).
double mahalanobis_squared(std::span<const double> v,
                           std::span<const double> mean,
                           const Matrix& precision);

}  // namespace nurd
