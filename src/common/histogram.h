// Fixed-width histogram over a scalar sample. Backs the HBOS detector and
// the Figure-1 latency-distribution bench.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nurd {

class Matrix;

/// Equal-width histogram with optional Laplace-style smoothing for density
/// queries on empty bins.
class Histogram {
 public:
  /// Builds a histogram with `bins` equal-width bins spanning [min, max] of
  /// the data. Degenerate (constant) data collapses to a single bin.
  Histogram(std::span<const double> values, std::size_t bins);

  /// Same, over column `column` of `x` via a zero-copy strided view.
  Histogram(const Matrix& x, std::size_t column, std::size_t bins);

  std::size_t bin_count() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Count in bin b.
  std::size_t count(std::size_t b) const { return counts_[b]; }

  /// The bin index a value falls into (values outside the range clamp to the
  /// first/last bin).
  std::size_t bin_of(double value) const;

  /// Normalized density at `value`: bin count / (n · width), floored at
  /// `epsilon` so log-densities stay finite.
  double density(double value, double epsilon = 1e-12) const;

  /// Renders an ASCII bar chart (one row per bin) — used by the Figure-1
  /// bench to show latency distributions in the terminal.
  std::string ascii(std::size_t max_width = 60) const;

 private:
  /// Shared construction over any indexable range; counts via bin_of so
  /// build-time and query-time binning can never diverge.
  template <typename Range>
  void init(const Range& values, std::size_t bins);

  double lo_ = 0.0;
  double hi_ = 1.0;
  double width_ = 1.0;
  std::size_t n_ = 0;
  std::vector<std::size_t> counts_;
};

}  // namespace nurd
