// Descriptive statistics used across the library: means, variances,
// percentiles (the p90 straggler threshold), and Pearson correlation (used
// by the LSCP ensemble detector).
#pragma once

#include <span>
#include <vector>

namespace nurd {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> v);

/// Population variance (divide by n); 0 for spans of size < 2.
double variance(std::span<const double> v);

/// Population standard deviation.
double stddev(std::span<const double> v);

/// Linear-interpolated percentile, p in [0, 100]. Matches numpy's default
/// ("linear") interpolation. Throws for an empty input.
double percentile(std::span<const double> v, double p);

/// Minimum; throws for empty input.
double min_value(std::span<const double> v);

/// Maximum; throws for empty input.
double max_value(std::span<const double> v);

/// Median (50th percentile).
double median(std::span<const double> v);

/// Pearson correlation coefficient; 0 if either side has zero variance.
double pearson(std::span<const double> a, std::span<const double> b);

/// Standard logistic function 1/(1+exp(-x)), numerically stable.
double sigmoid(double x);

/// Standard normal probability density function.
double normal_pdf(double x);

/// Standard normal cumulative distribution function (via std::erfc).
double normal_cdf(double x);

/// Ranks of the values (0 = smallest); ties broken by index for determinism.
std::vector<std::size_t> argsort(std::span<const double> v);

/// Min-max normalizes values into [0,1]; constant input maps to all zeros.
std::vector<double> minmax_normalize(std::span<const double> v);

/// Z-score standardizes values; zero-stddev input maps to all zeros.
std::vector<double> zscore(std::span<const double> v);

}  // namespace nurd
