// Brute-force k-nearest-neighbour index. Shared by the ABOD, KNN, LOF, COF,
// SOD, and LSCP detectors. O(n²) distance computation is deliberate: the
// per-checkpoint task counts this library sees (hundreds to a few thousand)
// make a KD-tree unnecessary, and brute force is exact and branch-predictable.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace nurd {

/// One neighbour of a query point.
struct Neighbor {
  std::size_t index;  ///< row index into the indexed matrix
  double distance;    ///< Euclidean distance to the query
};

/// Exact k-NN over the rows of a fixed matrix.
class KnnIndex {
 public:
  /// Indexes the rows of `points`. The matrix is copied; the index remains
  /// valid independently of the caller's data.
  explicit KnnIndex(Matrix points);

  /// The k nearest rows to `query`, ascending by distance. If `exclude_self`
  /// is a valid row index, that row is skipped (used when querying indexed
  /// points against their own index). k is clamped to the available count.
  std::vector<Neighbor> query(std::span<const double> query, std::size_t k,
                              std::size_t exclude_self = kNoExclude) const;

  /// k nearest neighbours of indexed row `i`, excluding itself.
  std::vector<Neighbor> neighbors_of(std::size_t i, std::size_t k) const;

  std::size_t size() const { return points_.rows(); }
  const Matrix& points() const { return points_; }

  static constexpr std::size_t kNoExclude = static_cast<std::size_t>(-1);

 private:
  Matrix points_;
};

/// Full pairwise Euclidean distance matrix of the rows of `points`
/// (symmetric, zero diagonal). Used by SOS and COF which need all pairs.
Matrix pairwise_distances(const Matrix& points);

}  // namespace nurd
