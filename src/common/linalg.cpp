#include "common/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "kernel/kernel.h"

namespace nurd {

std::optional<Matrix> cholesky(const Matrix& a) {
  NURD_CHECK(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  const auto& kops = kernel::ops();
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      // s = a(i,j) − Σ_k<j l(i,k)·l(j,k): contiguous row prefixes, one
      // kernel dot_sub (reference: the seed's sequential deductions).
      double s = kops.dot_sub(a(i, j), l.row(i).data(), l.row(j).data(), j);
      if (i == j) {
        if (s <= 0.0) return std::nullopt;
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b) {
  const std::size_t n = l.rows();
  NURD_CHECK(b.size() == n, "rhs size mismatch");
  // Forward substitution: L·y = b.
  const auto& kops = kernel::ops();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double s = kops.dot_sub(b[i], l.row(i).data(), y.data(), i);
    y[i] = s / l(i, i);
  }
  // Back substitution: Lᵀ·x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::optional<Matrix> spd_inverse(const Matrix& a) {
  auto l = cholesky(a);
  if (!l) return std::nullopt;
  const std::size_t n = a.rows();
  Matrix inv(n, n, 0.0);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    auto x = cholesky_solve(*l, e);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = x[r];
    e[c] = 0.0;
  }
  return inv;
}

double cholesky_logdet(const Matrix& l) {
  double s = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) s += std::log(l(i, i));
  return 2.0 * s;
}

EigenResult jacobi_eigen(const Matrix& a, int max_sweeps) {
  NURD_CHECK(a.rows() == a.cols(), "eigen requires a square matrix");
  const std::size_t n = a.rows();
  Matrix d = a;             // working copy, converges to diagonal
  Matrix v(n, n, 0.0);      // accumulated rotations (columns = eigenvectors)
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(d(p, q)) < 1e-30) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation G(p,q,θ) on both sides of D and accumulate in V.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p), dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k), dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a_, std::size_t b_) {
    return d(a_, a_) > d(b_, b_);
  });

  EigenResult out;
  out.values.resize(n);
  out.vectors = Matrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = d(order[i], order[i]);
    for (std::size_t k = 0; k < n; ++k) out.vectors(i, k) = v(k, order[i]);
  }
  return out;
}

Matrix covariance(const Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  Matrix cov(d, d, 0.0);
  if (n < 2) return cov;
  const auto mu = x.col_means();
  const auto& kops = kernel::ops();
  // Center each row into scratch, then one rank-1 syrk-lite update of the
  // upper triangle — per-entry accumulation order matches the seed's.
  std::vector<double> centered(d);
  double* cov_data = cov.row(0).data();
  for (std::size_t r = 0; r < n; ++r) {
    auto v = x.row(r);
    kops.vsub(centered.data(), v.data(), mu.data(), d);
    kops.syrk_rank1_upper(cov_data, d, centered.data(), d, 1.0);
  }
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  return cov;
}

double mahalanobis_squared(std::span<const double> v,
                           std::span<const double> mean,
                           const Matrix& precision) {
  const std::size_t d = v.size();
  NURD_CHECK(mean.size() == d && precision.rows() == d && precision.cols() == d,
             "mahalanobis dimension mismatch");
  const auto& kops = kernel::ops();
  std::vector<double> diff(d);
  kops.vsub(diff.data(), v.data(), mean.data(), d);
  double s = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double row = kops.dot(0.0, precision.row(i).data(), diff.data(), d);
    s += diff[i] * row;
  }
  return s;
}

}  // namespace nurd
