#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "common/check.h"
#include "common/matrix.h"
#include "common/stats.h"
#include "kernel/kernel.h"

namespace nurd {

template <typename Range>
void Histogram::init(const Range& values, std::size_t bins) {
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  lo_ = *mn;
  hi_ = *mx;
  n_ = values.size();
  if (hi_ - lo_ <= 0.0) {
    counts_.assign(1, n_);
    width_ = 1.0;
    hi_ = lo_ + 1.0;
    return;
  }
  counts_.assign(bins, 0);
  width_ = (hi_ - lo_) / static_cast<double>(bins);
  // Batched binning: gather the (possibly strided) range into contiguous
  // scratch, one kernel bin_index call over the whole block, then count.
  // kernel::bin_index implements exactly bin_of's clamp-and-truncate, so
  // build-time and query-time binning still cannot diverge.
  std::vector<double> scratch(values.begin(), values.end());
  std::vector<std::uint32_t> idx(scratch.size());
  kernel::ops().bin_index(scratch.data(), scratch.size(), lo_, hi_, width_,
                          counts_.size(), idx.data());
  for (const auto b : idx) ++counts_[b];
}

Histogram::Histogram(std::span<const double> values, std::size_t bins) {
  NURD_CHECK(!values.empty(), "histogram of empty sample");
  NURD_CHECK(bins > 0, "histogram needs at least one bin");
  init(values, bins);
}

Histogram::Histogram(const Matrix& x, std::size_t column, std::size_t bins) {
  const ColView values = x.col_view(column);
  NURD_CHECK(!values.empty(), "histogram of empty sample");
  NURD_CHECK(bins > 0, "histogram needs at least one bin");
  init(values, bins);
}

std::size_t Histogram::bin_of(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  const auto b = static_cast<std::size_t>((value - lo_) / width_);
  return std::min(b, counts_.size() - 1);
}

double Histogram::density(double value, double epsilon) const {
  const double d = static_cast<double>(counts_[bin_of(value)]) /
                   (static_cast<double>(n_) * width_);
  return std::max(d, epsilon);
}

std::string Histogram::ascii(std::size_t max_width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double left = lo_ + width_ * static_cast<double>(b);
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * max_width / peak;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "[" << left << ", " << left + width_ << ") "
       << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace nurd
