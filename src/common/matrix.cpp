#include "common/matrix.h"

#include <cmath>

#include "common/check.h"
#include "kernel/kernel.h"

namespace nurd {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  for (const auto& r : rows) {
    std::vector<double> v(r);
    push_row(v);
  }
}

Matrix Matrix::from_flat(std::size_t rows, std::size_t cols,
                         std::vector<double> flat) {
  NURD_CHECK(flat.size() == rows * cols, "flat buffer size mismatch");
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_.assign(flat.begin(), flat.end());
  return m;
}

std::vector<double> Matrix::col(std::size_t c) const {
  NURD_CHECK(c < cols_, "column index out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

ColView Matrix::col_view(std::size_t c) const {
  NURD_CHECK(c < cols_, "column index out of range");
  return {data_.data() + c, rows_, cols_};
}

void Matrix::push_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = values.size();
    if (row_reserve_hint_ > 0) {
      data_.reserve(row_reserve_hint_ * cols_);
      row_reserve_hint_ = 0;
    }
  }
  NURD_CHECK(values.size() == cols_, "row length mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void Matrix::reset(std::size_t cols) {
  rows_ = 0;
  cols_ = cols;
  row_reserve_hint_ = 0;
  data_.clear();
}

void Matrix::reserve_rows(std::size_t n) {
  if (cols_ == 0) {
    row_reserve_hint_ = n;
    return;
  }
  data_.reserve(n * cols_);
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out;
  out.cols_ = cols_;
  out.reserve_rows(indices.size());
  for (const auto idx : indices) {
    NURD_CHECK(idx < rows_, "row index out of range");
    out.push_row(row(idx));
  }
  return out;
}

std::vector<double> Matrix::col_means() const {
  std::vector<double> mean(cols_, 0.0);
  if (rows_ == 0) return mean;
  for (std::size_t r = 0; r < rows_; ++r) {
    auto v = row(r);
    for (std::size_t c = 0; c < cols_; ++c) mean[c] += v[c];
  }
  for (auto& m : mean) m /= static_cast<double>(rows_);
  return mean;
}

std::vector<double> Matrix::col_stddevs() const {
  std::vector<double> sd(cols_, 0.0);
  if (rows_ == 0) return sd;
  const auto mean = col_means();
  for (std::size_t r = 0; r < rows_; ++r) {
    auto v = row(r);
    for (std::size_t c = 0; c < cols_; ++c) {
      const double d = v[c] - mean[c];
      sd[c] += d * d;
    }
  }
  for (auto& s : sd) s = std::sqrt(s / static_cast<double>(rows_));
  return sd;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  return kernel::ops().squared_l2(a.data(), b.data(), a.size());
}

double euclidean_distance(std::span<const double> a,
                          std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

double dot(std::span<const double> a, std::span<const double> b) {
  return kernel::ops().dot(0.0, a.data(), b.data(), a.size());
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace nurd
