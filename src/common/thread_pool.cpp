#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace nurd {

namespace {
// True while this thread is executing a parallel_for task (worker or
// participating caller); nested parallel_for calls then degrade to serial.
thread_local bool g_in_pool_task = false;
}  // namespace

// Shared by the caller and every enqueued worker share of one parallel_for.
// Indices are claimed through a single atomic counter, so each index runs
// exactly once no matter how many shares end up executing. The error slot is
// guarded by the state's own mutex end to end: shares record under the lock,
// the caller reads under the lock after the completion wait — the exception
// hand-off is an annotated happens-before, not an inferred one.
struct ThreadPool::LoopState {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  Mutex mutex;
  CondVar cv;
  std::exception_ptr error NURD_GUARDED_BY(mutex);
};

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::run_share(const std::shared_ptr<LoopState>& state) {
  const bool was_in_task = g_in_pool_task;
  g_in_pool_task = true;
  for (;;) {
    const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->count) break;
    if (!state->failed.load(std::memory_order_relaxed)) {
      try {
        (*state->fn)(i);
      } catch (...) {
        MutexLock lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->count) {
      // Last index finished: wake the caller (it may be sleeping on cv).
      MutexLock lock(state->mutex);
      state->cv.notify_all();
    }
  }
  g_in_pool_task = was_in_task;
}

bool ThreadPool::poisoned() const {
  MutexLock lock(mutex_);
  return detached_error_ != nullptr;
}

void ThreadPool::surface_poison() {
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    if (!detached_error_) return;
    std::swap(error, detached_error_);
  }
  std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  surface_poison();
  if (count == 0) return;
  if (workers_.empty() || count == 1 || g_in_pool_task) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->count = count;
  state->fn = &fn;

  // One share per worker (capped at the index count); the caller is the
  // final share. A share that wakes up after the loop drained exits without
  // touching fn, so stale queue entries are harmless.
  const std::size_t shares = std::min(workers_.size(), count - 1);
  {
    MutexLock lock(mutex_);
    for (std::size_t s = 0; s < shares; ++s) {
      queue_.emplace_back([state] { run_share(state); });
    }
  }
  if (shares == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }

  run_share(state);
  // The completion wait and the error read share one locked region: a share
  // that threw recorded state->error under state->mutex before its final
  // done increment, so reading it here (same lock held) is the annotated
  // version of the hand-off the old code left to the acq_rel counter alone.
  std::exception_ptr error;
  {
    MutexLock lock(state->mutex);
    while (state->done.load(std::memory_order_acquire) != count) {
      state->cv.wait(state->mutex);
    }
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::submit(std::function<void()> task) {
  surface_poison();
  // The wrapper marks the thread as pool-occupied for the task's duration so
  // nested parallel_for calls stay serial (see the header: one lane per
  // submitted task). An exception escaping the task poisons the pool instead
  // of unwinding the worker thread (which would std::terminate the process
  // with no diagnostic); the next enqueue surfaces it. Poison is recorded
  // and surfaced under mutex_ (annotated), so the caller that observes it
  // also observes everything the dying task wrote before throwing.
  auto wrapped = [this, task = std::move(task)] {
    struct FlagGuard {
      bool saved = g_in_pool_task;
      FlagGuard() { g_in_pool_task = true; }
      ~FlagGuard() { g_in_pool_task = saved; }
    } guard;
    try {
      task();
    } catch (...) {
      MutexLock lock(mutex_);
      if (!detached_error_) detached_error_ = std::current_exception();
    }
  };
  if (workers_.empty()) {
    wrapped();
    return;
  }
  {
    MutexLock lock(mutex_);
    queue_.emplace_back(std::move(wrapped));
  }
  cv_.notify_one();
}

void ThreadPool::run_indexed(std::size_t count, std::size_t threads,
                             const std::function<void(std::size_t)>& fn) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, count) - 1);
  pool.parallel_for(count, fn);
}

ThreadPool& ThreadPool::global() {
  // Leaked intentionally: joining workers during static destruction can
  // deadlock with other atexit handlers, and the OS reclaims the threads.
  static ThreadPool* pool = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw > 1 ? hw - 1 : 0);
  }();
  return *pool;
}

}  // namespace nurd
