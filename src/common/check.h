// Contract-checking macros used at public API boundaries.
//
// NURD_CHECK throws std::invalid_argument with a formatted message when the
// condition is false. It is used to validate caller-supplied arguments; it is
// NOT used on hot inner loops (those use plain assert in debug builds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nurd {

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}
}  // namespace detail

}  // namespace nurd

#define NURD_CHECK(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::nurd::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (false)
