#include "common/knn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "kernel/kernel.h"

namespace nurd {

KnnIndex::KnnIndex(Matrix points) : points_(std::move(points)) {}

std::vector<Neighbor> KnnIndex::query(std::span<const double> query,
                                      std::size_t k,
                                      std::size_t exclude_self) const {
  NURD_CHECK(query.size() == points_.cols(), "query dimension mismatch");
  const std::size_t n = points_.rows();
  // One batched kernel call for all n squared distances (the scan below then
  // only filters and sorts); reference backend matches the per-row
  // squared_distance loop bit-for-bit.
  std::vector<double> d2(n);
  kernel::ops().squared_l2_rows(points_.flat().data(), n, points_.cols(),
                                query.data(), d2.data());
  std::vector<Neighbor> all;
  all.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == exclude_self) continue;
    all.push_back({i, d2[i]});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.index < b.index);
                    });
  all.resize(k);
  for (auto& nb : all) nb.distance = std::sqrt(nb.distance);
  return all;
}

std::vector<Neighbor> KnnIndex::neighbors_of(std::size_t i,
                                             std::size_t k) const {
  NURD_CHECK(i < points_.rows(), "row index out of range");
  return query(points_.row(i), k, i);
}

Matrix pairwise_distances(const Matrix& points) {
  const std::size_t n = points.rows();
  Matrix d(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dist = euclidean_distance(points.row(i), points.row(j));
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  return d;
}

}  // namespace nurd
