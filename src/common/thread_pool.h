// A small work-stealing-free thread pool built for deterministic data
// parallelism. The library's two hot fan-outs — per-feature histogram
// construction inside RegressionTree and per-job evaluation in the harness —
// are index-parallel loops whose tasks write to disjoint slots, so the
// workhorse primitive is a blocking parallel_for; the serving layer
// additionally dispatches detached per-job tasks through submit().
//
// Determinism contract: parallel_for(count, fn) calls fn(i) exactly once for
// every i in [0, count). Which thread runs which index is unspecified, but as
// long as tasks only write to per-index state (the pattern used throughout
// this library), results are bit-identical across pool sizes, including the
// serial size-0 pool.
//
// The calling thread participates in the loop, so a pool with zero workers
// degrades to a plain serial loop, and nested parallel_for calls from inside
// a pool task can always make progress (the inner caller drains its own
// indices) — no deadlock by construction.
//
// Lock discipline (compiler-checked via common/sync.h): mutex_ guards the
// queue, the stop flag, and the detached-poison slot; it is a LEAF lock —
// tasks always run with it released, so a task may freely call submit() or
// parallel_for() on this pool again.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace nurd {

class ThreadPool {
 public:
  /// Spawns exactly `workers` threads. Zero workers is valid: every
  /// parallel_for then runs serially on the calling thread.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding participating callers).
  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count), blocking until all calls return.
  /// The caller participates. The first exception thrown by any fn(i) is
  /// rethrown on the caller after the loop drains.
  ///
  /// A parallel_for issued from inside another parallel_for's task runs
  /// serially on the issuing thread: the outer loop already owns the
  /// hardware, so nested fan-out would only oversubscribe it (e.g. harness
  /// job lanes each containing pool-hungry histogram fits).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn)
      NURD_EXCLUDES(mutex_);

  /// Enqueues a detached task for the workers and returns immediately — the
  /// serving layer's dispatch primitive (completion tracking stays with the
  /// caller; the StreamMonitor counts in-flight events itself). The task runs
  /// with the nested-parallelism flag set, so parallel_for calls issued from
  /// inside it degrade to serial loops: a submitted task owns exactly one
  /// lane, and multi-job throughput comes from many tasks in flight, not
  /// from each task fanning out again. On a zero-worker pool the task runs
  /// inline on the calling thread before submit() returns.
  ///
  /// Unlike parallel_for, there is no completion channel. A detached task
  /// SHOULD keep its own try/catch and completion accounting (see the
  /// serving executors); an exception that does escape one does not unwind
  /// the worker — the pool catches it, records the first such exception
  /// under mutex_, and enters a POISONED state: the next submit() or
  /// parallel_for() call rethrows the recorded exception on the caller (and
  /// clears it, so the pool stays usable afterwards). The poison write and
  /// its surfacing read both happen under mutex_, so the hand-off is an
  /// annotated happens-before, not a convention. Destruction never throws;
  /// an unread poison is dropped with the pool.
  void submit(std::function<void()> task) NURD_EXCLUDES(mutex_);

  /// True when a detached task died with an exception that no submit() or
  /// parallel_for() call has surfaced yet.
  bool poisoned() const NURD_EXCLUDES(mutex_);

  /// Process-wide shared pool sized to the hardware: hardware_concurrency−1
  /// workers (the caller supplies the remaining lane), so a single-core
  /// machine gets a zero-worker pool and fully serial execution.
  static ThreadPool& global();

  /// The shared lane-resolution idiom of the evaluation harness and the
  /// trace generator: runs fn(i) for every i in [0, count) across `threads`
  /// lanes (0 = hardware concurrency, 1 = fully serial). A pool of
  /// threads−1 workers plus the participating caller gives exactly
  /// `threads` lanes; the usual determinism contract applies.
  static void run_indexed(std::size_t count, std::size_t threads,
                          const std::function<void(std::size_t)>& fn);

 private:
  struct LoopState;

  void worker_loop() NURD_EXCLUDES(mutex_);
  static void run_share(const std::shared_ptr<LoopState>& state);

  /// Rethrows (and clears) the recorded detached-task exception if one is
  /// pending; called at the poison surfacing points.
  void surface_poison() NURD_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ NURD_GUARDED_BY(mutex_);
  bool stop_ NURD_GUARDED_BY(mutex_) = false;
  /// First exception to escape a detached task (see submit()).
  std::exception_ptr detached_error_ NURD_GUARDED_BY(mutex_);
};

}  // namespace nurd
