// Deterministic random-number generation. Every stochastic component in the
// library takes an explicit Rng (or seed) — there is no global RNG state, so
// all experiments are reproducible from the seed printed by the benches.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace nurd {

/// Seedable RNG wrapper around std::mt19937_64 with the handful of draws the
/// library needs. Copyable; copies advance independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (mean 0, stddev 1) scaled/shifted to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal with the given log-space mu and sigma.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate lambda.
  double exponential(double lambda);

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy tail for small alpha).
  double pareto(double xm, double alpha);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// k indices sampled without replacement from {0, ..., n-1}; k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// k indices sampled with replacement from {0, ..., n-1}.
  std::vector<std::size_t> sample_with_replacement(std::size_t n,
                                                   std::size_t k);

  /// Derives an independent child RNG (for parallel-safe per-job streams).
  Rng fork();

  /// Underlying engine, for use with std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nurd
