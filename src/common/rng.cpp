#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace nurd {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::exponential(double lambda) {
  std::exponential_distribution<double> d(lambda);
  return d(engine_);
}

double Rng::pareto(double xm, double alpha) {
  NURD_CHECK(xm > 0 && alpha > 0, "pareto parameters must be positive");
  const double u = uniform(0.0, 1.0);
  // Inverse-CDF sampling; clamp u away from 1 to avoid division by zero.
  return xm / std::pow(1.0 - std::min(u, 1.0 - 1e-12), 1.0 / alpha);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(std::clamp(p, 0.0, 1.0));
  return d(engine_);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  NURD_CHECK(k <= n, "cannot sample more than n without replacement");
  auto idx = permutation(n);
  idx.resize(k);
  return idx;
}

std::vector<std::size_t> Rng::sample_with_replacement(std::size_t n,
                                                      std::size_t k) {
  NURD_CHECK(n > 0, "cannot sample from empty range");
  std::vector<std::size_t> idx(k);
  std::uniform_int_distribution<std::size_t> d(0, n - 1);
  for (auto& i : idx) i = d(engine_);
  return idx;
}

Rng Rng::fork() {
  return Rng(engine_());
}

}  // namespace nurd
