// 32-byte aligned allocation for SIMD-facing buffers. Feature matrices,
// histogram triplet arrays, and the FitSession scratch blocks allocate
// through AlignedAllocator so a kernel backend can use aligned vector loads
// on column/row starts. Alignment is a performance property only: every
// kernel primitive also accepts unaligned pointers (the AVX2 backend uses
// unaligned load/store instructions, which are full speed on aligned data).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace nurd {

/// Alignment (bytes) for SIMD-facing allocations: one AVX2 vector.
inline constexpr std::size_t kSimdAlign = 32;

/// Minimal std::allocator replacement with 32-byte aligned storage.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kSimdAlign}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kSimdAlign});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector with 32-byte aligned storage; data() is kSimdAlign-aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace nurd
