#include "common/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "kernel/kernel.h"

namespace nurd {

namespace {

// k-means++ seeding: first centroid uniform, subsequent centroids sampled
// proportionally to squared distance from the nearest chosen centroid.
Matrix seed_centroids(const Matrix& points, std::size_t k, Rng& rng) {
  const std::size_t n = points.rows();
  Matrix centroids(0, 0);
  const std::size_t first =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  centroids.push_row(points.row(first));

  std::vector<double> d2(n, std::numeric_limits<double>::max());
  while (centroids.rows() < k) {
    const auto last = centroids.row(centroids.rows() - 1);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], squared_distance(points.row(i), last));
      total += d2[i];
    }
    if (total <= 0.0) break;  // fewer distinct points than k
    double target = rng.uniform(0.0, total);
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_row(points.row(chosen));
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const Matrix& points, const KMeansParams& params,
                    Rng& rng) {
  NURD_CHECK(points.rows() > 0, "kmeans on empty input");
  NURD_CHECK(params.k > 0, "kmeans requires k > 0");
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const std::size_t k = std::min(params.k, n);

  Matrix centroids = seed_centroids(points, k, rng);
  const std::size_t k_eff = centroids.rows();

  KMeansResult result;
  result.labels.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();

  const auto& kops = kernel::ops();
  std::vector<double> dists(k_eff);
  for (int it = 0; it < params.max_iterations; ++it) {
    // Assignment step: one batched point-vs-all-centroids kernel call per
    // point, then a first-occurrence argmin scan (strict < keeps the seed's
    // tie-breaking toward the lower centroid index).
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      kops.squared_l2_rows(centroids.flat().data(), k_eff, d,
                           points.row(i).data(), dists.data());
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k_eff; ++c) {
        if (dists[c] < best) {
          best = dists[c];
          best_c = c;
        }
      }
      result.labels[i] = best_c;
      inertia += best;
    }

    // Update step.
    Matrix next(k_eff, d, 0.0);
    std::vector<std::size_t> counts(k_eff, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = result.labels[i];
      auto row = points.row(i);
      for (std::size_t j = 0; j < d; ++j) next(c, j) += row[j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k_eff; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: keep its previous centroid.
        auto prev = centroids.row(c);
        std::copy(prev.begin(), prev.end(), next.row(c).begin());
        continue;
      }
      for (std::size_t j = 0; j < d; ++j)
        next(c, j) /= static_cast<double>(counts[c]);
    }
    centroids = std::move(next);
    result.iterations = it + 1;
    result.inertia = inertia;
    if (prev_inertia - inertia < params.tolerance) break;
    prev_inertia = inertia;
  }

  result.sizes.assign(k_eff, 0);
  for (auto l : result.labels) ++result.sizes[l];
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace nurd
