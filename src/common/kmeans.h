// Lloyd's k-means with k-means++ seeding. Backs the CBLOF detector's cluster
// structure and the LSCP local-region machinery.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace nurd {

/// Result of a k-means clustering run.
struct KMeansResult {
  Matrix centroids;                    ///< k × d centroid matrix
  std::vector<std::size_t> labels;     ///< cluster id per input row
  std::vector<std::size_t> sizes;      ///< #points per cluster
  double inertia = 0.0;                ///< sum of squared distances to centroid
  int iterations = 0;                  ///< Lloyd iterations executed
};

/// Parameters for k-means.
struct KMeansParams {
  std::size_t k = 8;
  int max_iterations = 100;
  double tolerance = 1e-6;  ///< stop when inertia improvement falls below this
};

/// Runs k-means++-seeded Lloyd iterations on the rows of `points`.
/// k is clamped to the number of distinct input rows available.
KMeansResult kmeans(const Matrix& points, const KMeansParams& params, Rng& rng);

}  // namespace nurd
