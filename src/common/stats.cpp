#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace nurd {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double percentile(std::span<const double> v, double p) {
  NURD_CHECK(!v.empty(), "percentile of empty span");
  NURD_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::vector<double> s(v.begin(), v.end());
  std::sort(s.begin(), s.end());
  if (s.size() == 1) return s[0];
  const double pos = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return s[lo] + (s[hi] - s[lo]) * frac;
}

double min_value(std::span<const double> v) {
  NURD_CHECK(!v.empty(), "min of empty span");
  return *std::min_element(v.begin(), v.end());
}

double max_value(std::span<const double> v) {
  NURD_CHECK(!v.empty(), "max of empty span");
  return *std::max_element(v.begin(), v.end());
}

double median(std::span<const double> v) { return percentile(v, 50.0); }

double pearson(std::span<const double> a, std::span<const double> b) {
  NURD_CHECK(a.size() == b.size(), "pearson inputs must be same length");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double normal_pdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

std::vector<std::size_t> argsort(std::span<const double> v) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  return idx;
}

std::vector<double> minmax_normalize(std::span<const double> v) {
  std::vector<double> out(v.size(), 0.0);
  if (v.empty()) return out;
  const double lo = min_value(v);
  const double hi = max_value(v);
  if (hi - lo <= 0.0) return out;
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - lo) / (hi - lo);
  return out;
}

std::vector<double> zscore(std::span<const double> v) {
  std::vector<double> out(v.size(), 0.0);
  if (v.empty()) return out;
  const double m = mean(v);
  const double s = stddev(v);
  if (s <= 0.0) return out;
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - m) / s;
  return out;
}

}  // namespace nurd
