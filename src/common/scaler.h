// Feature standardization. Fitted on training rows, applied to both training
// and inference rows; distance-based detectors and linear models are scale
// sensitive, so every model in this library standardizes through this class.
#pragma once

#include <vector>

#include "common/matrix.h"

namespace nurd {

/// Z-score scaler: x' = (x − μ) / σ per column, with σ = 0 columns passed
/// through centered only (divide-by-one).
class StandardScaler {
 public:
  /// Learns per-column mean and stddev from the rows of `x`.
  void fit(const Matrix& x);

  /// Applies the learned transform. Columns must match the fitted matrix.
  Matrix transform(const Matrix& x) const;

  /// Transforms a single row in place.
  void transform_row(std::span<double> row) const;

  /// fit + transform in one call.
  Matrix fit_transform(const Matrix& x);

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& scale() const { return scale_; }

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;  // stddev with zeros replaced by 1
};

}  // namespace nurd
