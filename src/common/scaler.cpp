#include "common/scaler.h"

#include "common/check.h"

namespace nurd {

void StandardScaler::fit(const Matrix& x) {
  NURD_CHECK(x.rows() > 0, "cannot fit scaler on empty matrix");
  mean_ = x.col_means();
  scale_ = x.col_stddevs();
  for (auto& s : scale_) {
    if (s <= 0.0) s = 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  NURD_CHECK(fitted(), "scaler not fitted");
  NURD_CHECK(x.cols() == mean_.size(), "column count mismatch");
  Matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) transform_row(out.row(r));
  return out;
}

void StandardScaler::transform_row(std::span<double> row) const {
  NURD_CHECK(fitted(), "scaler not fitted");
  NURD_CHECK(row.size() == mean_.size(), "row length mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) {
    row[c] = (row[c] - mean_[c]) / scale_[c];
  }
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

}  // namespace nurd
