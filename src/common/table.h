// Plain-text table rendering for the benchmark harness — every bench prints
// the same rows/series the paper reports, via this formatter.
#pragma once

#include <string>
#include <vector>

namespace nurd {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rendered with a header rule, suitable for terminals and
/// for diffing against EXPERIMENTS.md.
class TextTable {
 public:
  /// Sets the header row (defines the column count).
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Formats a double with `precision` digits after the point.
  static std::string num(double v, int precision = 2);

  /// Renders the table with single-space-padded columns and a dashed rule
  /// under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nurd
